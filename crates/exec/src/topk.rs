//! Threshold evaluation over scored-node streams (Sec. 5.3).
//!
//! Value-based thresholding is a streaming filter; rank-based (top-k)
//! thresholding keeps a bounded min-heap, the standard technique from the
//! top-k literature the paper cites ([8, 5]).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::scored::ScoredNode;

/// Min-heap wrapper ordering scored nodes by ascending score.
struct MinByScore(ScoredNode);

impl PartialEq for MinByScore {
    fn eq(&self, other: &Self) -> bool {
        matches!(self.0.score.total_cmp(&other.0.score), Ordering::Equal)
    }
}
impl Eq for MinByScore {}
impl PartialOrd for MinByScore {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MinByScore {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; `total_cmp` keeps Eq and Ord consistent
        // and makes NaN the largest value, so reversed it is evicted first.
        other.0.score.total_cmp(&self.0.score)
    }
}

/// Keep only nodes scoring strictly above `min` (the paper's value
/// condition `V`).
pub fn min_score<I: IntoIterator<Item = ScoredNode>>(input: I, min: f64) -> Vec<ScoredNode> {
    let out: Vec<ScoredNode> = input.into_iter().filter(|s| s.score > min).collect();
    // §4.2: nothing at or below the value threshold survives.
    tix_invariants::check! {
        tix_invariants::assert_scores_above(out.iter().map(|s| s.score), min);
    }
    out
}

/// The `k` highest-scoring nodes, in descending score order, computed with
/// a bounded heap (O(n log k)); ties broken by document order of arrival.
pub fn top_k<I: IntoIterator<Item = ScoredNode>>(input: I, k: usize) -> Vec<ScoredNode> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<MinByScore> = BinaryHeap::with_capacity(k + 1);
    for node in input {
        heap.push(MinByScore(node));
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut out: Vec<ScoredNode> = heap.into_iter().map(|m| m.0).collect();
    out.sort_by(|a, b| b.score.total_cmp(&a.score));
    // §4.2: the top-k view is emitted in descending score order.
    tix_invariants::check! {
        tix_invariants::assert_scores_sorted_desc(out.iter().map(|s| s.score));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tix_store::{DocId, NodeIdx, NodeRef};

    fn sn(i: u32, score: f64) -> ScoredNode {
        ScoredNode::new(NodeRef::new(DocId(0), NodeIdx(i)), score)
    }

    #[test]
    fn min_score_strict() {
        let kept = min_score(vec![sn(0, 1.0), sn(1, 2.0), sn(2, 3.0)], 2.0);
        assert_eq!(kept, vec![sn(2, 3.0)]);
    }

    #[test]
    fn top_k_basics() {
        let input = vec![sn(0, 1.0), sn(1, 5.0), sn(2, 3.0), sn(3, 4.0)];
        let top = top_k(input, 2);
        assert_eq!(top, vec![sn(1, 5.0), sn(3, 4.0)]);
    }

    #[test]
    fn top_k_zero_and_oversized() {
        assert!(top_k(vec![sn(0, 1.0)], 0).is_empty());
        assert_eq!(top_k(vec![sn(0, 1.0)], 10).len(), 1);
    }

    #[test]
    fn top_k_matches_full_sort() {
        let input: Vec<ScoredNode> = (0..100).map(|i| sn(i, ((i * 37) % 100) as f64)).collect();
        let top = top_k(input.clone(), 10);
        let mut sorted = input;
        sorted.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
        let expect: Vec<f64> = sorted[..10].iter().map(|s| s.score).collect();
        let got: Vec<f64> = top.iter().map(|s| s.score).collect();
        assert_eq!(got, expect);
    }
}
