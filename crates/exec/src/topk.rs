//! Threshold evaluation over scored-node streams (Sec. 5.3).
//!
//! Value-based thresholding is a streaming filter; rank-based (top-k)
//! thresholding keeps a bounded min-heap, the standard technique from the
//! top-k literature the paper cites ([8, 5]).
//!
//! The accumulator's ordering is **total**: ties on score are broken by
//! arrival order (earlier wins), so both the kept set and the emitted
//! order are a pure function of the input *sequence* — independent of the
//! heap's internal layout. The Threshold-pushdown executor
//! ([`crate::pushdown`]) depends on exactly this property: it may stop
//! feeding the accumulator once the §4.2 score bound proves every
//! unscanned candidate scores strictly below the current k-th entry, and
//! the output is still byte-identical to the full scan, because feeding
//! a strictly-below-minimum element into a full accumulator is a no-op.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::scored::ScoredNode;

/// Heap entry ordered **worst-first**: a lower score is `Greater`, and
/// among equal scores a *later* arrival is `Greater` (so earlier arrivals
/// win ties). `total_cmp` keeps `Eq` and `Ord` consistent; a NaN score
/// compares largest, matching the previous heap's behavior (the
/// `scores_sorted_desc` invariant rejects NaN output under checks anyway).
struct WorstFirst {
    node: ScoredNode,
    arrival: u64,
}

impl PartialEq for WorstFirst {
    fn eq(&self, other: &Self) -> bool {
        matches!(self.cmp(other), Ordering::Equal)
    }
}
impl Eq for WorstFirst {}
impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .node
            .score
            .total_cmp(&self.node.score)
            .then(self.arrival.cmp(&other.arrival))
    }
}

/// A bounded top-k accumulator with deterministic tie-breaking: keeps the
/// `k` best entries by `(score descending, arrival ascending)`.
///
/// Because the ordering is a strict total order (arrival indices are
/// unique), the retained set after any prefix of pushes is exactly the
/// `k` minimal entries of that prefix under worst-first order — no
/// dependence on `BinaryHeap` layout — which is what lets the pushdown
/// executor reason about early exit byte-for-byte.
pub struct TopK {
    k: usize,
    arrivals: u64,
    heap: BinaryHeap<WorstFirst>,
}

impl TopK {
    /// An empty accumulator retaining at most `k` entries.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            arrivals: 0,
            heap: BinaryHeap::with_capacity(k.min(4096).saturating_add(1)),
        }
    }

    /// Offer one scored node. Strictly-worse-than-k-th offers leave the
    /// retained set untouched (but still consume an arrival index, so a
    /// skipped offer and a discarded offer are indistinguishable).
    pub fn push(&mut self, node: ScoredNode) {
        let arrival = self.arrivals;
        self.arrivals += 1;
        if self.k == 0 {
            return;
        }
        let entry = WorstFirst { node, arrival };
        if self.heap.len() < self.k {
            self.heap.push(entry);
        } else if let Some(worst) = self.heap.peek() {
            if entry.cmp(worst) == Ordering::Less {
                self.heap.pop();
                self.heap.push(entry);
            }
        }
    }

    /// Entries currently retained (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True when the accumulator holds `k` entries (always true for
    /// `k == 0`).
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// The score of the current k-th (worst retained) entry, when full.
    /// This is the bar an unseen candidate must *strictly* beat to change
    /// the result.
    pub fn kth_score(&self) -> Option<f64> {
        if self.is_full() {
            self.heap.peek().map(|w| w.node.score)
        } else {
            None
        }
    }

    /// The retained entries, best first: descending score, ties in
    /// arrival order.
    pub fn into_sorted(self) -> Vec<ScoredNode> {
        let mut entries = self.heap.into_vec();
        // Worst-first ascending == best-first.
        entries.sort();
        let out: Vec<ScoredNode> = entries.into_iter().map(|e| e.node).collect();
        // §4.2: the top-k view is emitted in descending score order.
        tix_invariants::check! {
            tix_invariants::assert_scores_sorted_desc(out.iter().map(|s| s.score));
        }
        out
    }
}

/// Keep only nodes scoring strictly above `min` (the paper's value
/// condition `V`).
pub fn min_score<I: IntoIterator<Item = ScoredNode>>(input: I, min: f64) -> Vec<ScoredNode> {
    let out: Vec<ScoredNode> = input.into_iter().filter(|s| s.score > min).collect();
    // §4.2: nothing at or below the value threshold survives.
    tix_invariants::check! {
        tix_invariants::assert_scores_above(out.iter().map(|s| s.score), min);
    }
    out
}

/// The `k` highest-scoring nodes, in descending score order, computed with
/// a bounded heap (O(n log k)); ties broken by order of arrival (for a
/// document-ordered input stream, by document order).
pub fn top_k<I: IntoIterator<Item = ScoredNode>>(input: I, k: usize) -> Vec<ScoredNode> {
    let mut acc = TopK::new(k);
    for node in input {
        acc.push(node);
    }
    acc.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tix_store::{DocId, NodeIdx, NodeRef};

    fn sn(i: u32, score: f64) -> ScoredNode {
        ScoredNode::new(NodeRef::new(DocId(0), NodeIdx(i)), score)
    }

    #[test]
    fn min_score_strict() {
        let kept = min_score(vec![sn(0, 1.0), sn(1, 2.0), sn(2, 3.0)], 2.0);
        assert_eq!(kept, vec![sn(2, 3.0)]);
    }

    #[test]
    fn top_k_basics() {
        let input = vec![sn(0, 1.0), sn(1, 5.0), sn(2, 3.0), sn(3, 4.0)];
        let top = top_k(input, 2);
        assert_eq!(top, vec![sn(1, 5.0), sn(3, 4.0)]);
    }

    #[test]
    fn top_k_zero_and_oversized() {
        assert!(top_k(vec![sn(0, 1.0)], 0).is_empty());
        assert_eq!(top_k(vec![sn(0, 1.0)], 10).len(), 1);
    }

    #[test]
    fn top_k_matches_full_sort() {
        let input: Vec<ScoredNode> = (0..100).map(|i| sn(i, ((i * 37) % 100) as f64)).collect();
        let top = top_k(input.clone(), 10);
        let mut sorted = input;
        sorted.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
        let expect: Vec<f64> = sorted[..10].iter().map(|s| s.score).collect();
        let got: Vec<f64> = top.iter().map(|s| s.score).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn ties_resolved_by_arrival_order() {
        // Four equal scores, k = 2: the first two arrivals are kept, in
        // arrival order.
        let input = vec![sn(7, 1.0), sn(3, 1.0), sn(9, 1.0), sn(1, 1.0)];
        assert_eq!(top_k(input, 2), vec![sn(7, 1.0), sn(3, 1.0)]);
    }

    #[test]
    fn strictly_worse_offers_do_not_disturb_ties() {
        // Ties at the boundary, then a strictly smaller element: the
        // retained set and order must be identical to never offering it.
        let base = vec![sn(0, 2.0), sn(1, 2.0), sn(2, 2.0)];
        let mut with_noise = base.clone();
        with_noise.push(sn(3, 1.0));
        assert_eq!(top_k(base, 3), top_k(with_noise, 3));
    }

    #[test]
    fn accumulator_reports_kth_and_fullness() {
        let mut acc = TopK::new(2);
        assert!(acc.is_empty());
        assert!(!acc.is_full());
        assert_eq!(acc.kth_score(), None);
        acc.push(sn(0, 1.0));
        assert_eq!(acc.len(), 1);
        assert_eq!(acc.kth_score(), None);
        acc.push(sn(1, 3.0));
        assert!(acc.is_full());
        assert_eq!(acc.kth_score(), Some(1.0));
        acc.push(sn(2, 2.0));
        assert_eq!(acc.kth_score(), Some(2.0));
        assert_eq!(acc.into_sorted(), vec![sn(1, 3.0), sn(2, 2.0)]);
    }

    #[test]
    fn zero_capacity_accumulator() {
        let mut acc = TopK::new(0);
        assert!(acc.is_full());
        acc.push(sn(0, 5.0));
        assert_eq!(acc.kth_score(), None);
        assert!(acc.into_sorted().is_empty());
    }
}
