//! The **Generalized Meet** baseline (Sec. 6.1).
//!
//! Schmidt et al.'s *meet* operator finds the lowest common ancestor of a
//! set of term occurrences. The paper generalizes it: "It recursively
//! obtains the ancestors of the text node containing any of the terms and
//! output them along with the term occurrences after grouping based on
//! node id." Unlike TermJoin's ordered merge, this walks parent pointers
//! per occurrence and groups through a hash table — the per-ancestor hash
//! traffic is what makes it consistently slower than TermJoin at higher
//! term frequencies (Tables 1–4).

use std::collections::HashMap;

use tix_index::IndexReader;
use tix_store::{NodeRef, Store};

use crate::scored::{ScoredNode, TermHit};
use crate::termjoin::{count_nonzero_children, TermJoinScorer};

/// Per-ancestor accumulator.
struct Group {
    counters: Vec<u32>,
    hits: Vec<TermHit>,
}

/// Run the Generalized Meet: every ancestor element of every term
/// occurrence, scored exactly like TermJoin would score it.
pub fn generalized_meet<S: TermJoinScorer>(
    store: &Store,
    index: &dyn IndexReader,
    terms: &[&str],
    scorer: &S,
) -> Vec<ScoredNode> {
    let keep_detail = scorer.needs_detail();
    let mut groups: HashMap<NodeRef, Group> = HashMap::new();
    for (t, term) in terms.iter().enumerate() {
        for posting in index.postings(term) {
            let text = posting.node_ref();
            // Recursively obtain the ancestors of the text node.
            let mut cursor = store.parent(text);
            while let Some(anc) = cursor {
                let group = groups.entry(anc).or_insert_with(|| Group {
                    counters: vec![0; terms.len()],
                    hits: Vec::new(),
                });
                if let Some(counter) = group.counters.get_mut(t) {
                    *counter += 1;
                }
                if keep_detail {
                    group.hits.push(TermHit {
                        node: posting.node,
                        offset: posting.offset,
                        term: t as u16,
                    });
                }
                cursor = store.parent(anc);
            }
        }
    }
    groups
        .into_iter()
        .map(|(node, group)| {
            // Child accounting (`nonzero_children`) is part of the complex-
            // scoring contract and only meaningful when the scorer asked
            // for detail buffers.
            let nonzero = if keep_detail {
                count_nonzero_children(store, node, group.hits.iter().map(|h| h.node))
            } else {
                0
            };
            let score = scorer.score(store, node, &group.counters, &group.hits, nonzero);
            ScoredNode::new(node, score)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scored::{results_equal, sort_by_node};
    use crate::termjoin::{ChildCountMode, ComplexScorer, SimpleScorer, TermJoin};
    use tix_index::InvertedIndex;

    fn fixture() -> (Store, InvertedIndex) {
        let mut store = Store::new();
        store
            .load_str(
                "t.xml",
                "<a><b>x y</b><c><d>x</d><e>y z</e></c><f>z</f></a>",
            )
            .unwrap();
        let index = InvertedIndex::build(&store);
        (store, index)
    }

    #[test]
    fn agrees_with_termjoin_simple() {
        let (store, index) = fixture();
        let scorer = SimpleScorer::new(vec![0.8, 0.6]);
        let meet = sort_by_node(generalized_meet(&store, &index, &["x", "y"], &scorer));
        let tj = sort_by_node(TermJoin::new(&store, &index, &["x", "y"], &scorer).run());
        assert!(
            results_equal(&meet, &tj, 1e-9),
            "\nmeet={meet:?}\ntj={tj:?}"
        );
    }

    #[test]
    fn agrees_with_termjoin_complex() {
        let (store, index) = fixture();
        let scorer = ComplexScorer::uniform(ChildCountMode::Index);
        let meet = sort_by_node(generalized_meet(&store, &index, &["x", "y", "z"], &scorer));
        let tj = sort_by_node(TermJoin::new(&store, &index, &["x", "y", "z"], &scorer).run());
        assert!(
            results_equal(&meet, &tj, 1e-9),
            "\nmeet={meet:?}\ntj={tj:?}"
        );
    }

    #[test]
    fn empty_terms() {
        let (store, index) = fixture();
        let scorer = SimpleScorer::uniform();
        assert!(generalized_meet(&store, &index, &["nosuch"], &scorer).is_empty());
    }
}
