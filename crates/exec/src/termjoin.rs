//! The **TermJoin** access method (Fig. 11 of the paper) and its scoring
//! functions.
//!
//! TermJoin generalizes the stack-based structural-join family: one merge
//! pass over the per-term posting lists (ordered by start key) maintains a
//! stack holding the ancestor chain of the current occurrence. Each stack
//! frame accumulates per-term occurrence counters for its subtree; when a
//! frame is popped every descendant occurrence has been seen, so the node
//! can be scored and emitted immediately — no materialized intermediate
//! ancestor lists, no sorting, no grouping.
//!
//! Under **complex scoring** (Sec. 5.1.1, "Complex Scoring Function") each
//! frame additionally keeps the buffer of term hits (`if (!s)` in the
//! paper's pseudo-code) so the scorer can inspect term distances and the
//! proportion of relevant children. The scorer then needs each node's
//! total child count:
//!
//! * [`ChildCountMode::Navigate`] — plain TermJoin: a data access to the
//!   store with subtree navigation (the paper's original algorithm);
//! * [`ChildCountMode::Index`] — **Enhanced TermJoin**: an O(1) lookup in
//!   the store's child-count index (the variant Tables 2–4 show winning by
//!   up to 8×).

use std::collections::VecDeque;

use tix_index::{IndexReader, Posting};
use tix_store::{NodeIdx, NodeKind, NodeRef, Store};

use crate::scored::{ScoredNode, TermHit};

/// How a complex scorer obtains the total child count of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildCountMode {
    /// Navigate the stored subtree (plain TermJoin).
    Navigate,
    /// Read the child-count index (Enhanced TermJoin).
    Index,
}

/// Scores a popped node from its accumulated per-term counters (and, for
/// complex scorers, the hit detail and child information).
pub trait TermJoinScorer: Send + Sync {
    /// Whether the algorithm must keep per-frame hit buffers (the paper's
    /// `!s` branch). Simple scorers return `false` and skip that work.
    fn needs_detail(&self) -> bool;

    /// Score `node` given `counters[i]` = occurrences of query term `i` in
    /// its subtree. `detail` is the hit buffer (empty unless
    /// `needs_detail`); `nonzero_children` counts the node's direct
    /// children (elements or text nodes) whose subtrees contain at least
    /// one hit.
    fn score(
        &self,
        store: &Store,
        node: NodeRef,
        counters: &[u32],
        detail: &[TermHit],
        nonzero_children: u32,
    ) -> f64;

    /// An upper bound on [`TermJoinScorer::score`] over **any** node whose
    /// per-term counter vector is componentwise ≤ `remaining`, for any hit
    /// detail and child configuration. The Threshold-pushdown executor
    /// ([`crate::pushdown`]) uses this to prove that unscanned postings
    /// cannot beat the current k-th result (the §4.2 score bounds).
    ///
    /// The default, `f64::INFINITY`, is always sound — it simply disables
    /// early exit for scorers that do not provide a tighter bound.
    fn max_score_bound(&self, remaining: &[u32]) -> f64 {
        let _ = remaining;
        f64::INFINITY
    }
}

/// The paper's *simple* scoring function: "a weighted sum of the
/// occurrences of each term under a given ancestor".
#[derive(Debug, Clone)]
pub struct SimpleScorer {
    weights: Vec<f64>,
}

impl SimpleScorer {
    /// Weighted sum with the given per-term weights (terms beyond the
    /// vector reuse the last weight).
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "at least one weight");
        SimpleScorer { weights }
    }

    /// All-ones weights.
    pub fn uniform() -> Self {
        SimpleScorer { weights: vec![1.0] }
    }

    /// The running example's weights: 0.8 for the first (primary) term,
    /// 0.6 for the rest.
    pub fn paper() -> Self {
        SimpleScorer {
            weights: vec![0.8, 0.6],
        }
    }

    fn weight(&self, term: usize) -> f64 {
        self.weights
            .get(term)
            .or(self.weights.last())
            .copied()
            .unwrap_or(1.0)
    }
}

impl TermJoinScorer for SimpleScorer {
    fn needs_detail(&self) -> bool {
        false
    }

    fn score(
        &self,
        _store: &Store,
        _node: NodeRef,
        counters: &[u32],
        _detail: &[TermHit],
        _nonzero_children: u32,
    ) -> f64 {
        counters
            .iter()
            .enumerate()
            .map(|(i, &c)| self.weight(i) * f64::from(c))
            .sum()
    }

    /// Σᵢ max(wᵢ, 0) · remainingᵢ: the weighted sum is monotone in each
    /// counter for non-negative weights, and a negative weight contributes
    /// at most 0 (counters are non-negative).
    fn max_score_bound(&self, remaining: &[u32]) -> f64 {
        remaining
            .iter()
            .enumerate()
            .map(|(i, &c)| self.weight(i).max(0.0) * f64::from(c))
            .sum()
    }
}

/// The paper's *complex* scoring function (Sec. 6.1): the weighted sum is
/// boosted when the distances between different query terms are small —
/// "offset difference if they are in the same text node or multiples of
/// node-to-node distance if they are in different text nodes" — and then
/// "multiplied by the ratio between the number of non-zero scored children
/// and the number of total children".
#[derive(Debug, Clone)]
pub struct ComplexScorer {
    base: SimpleScorer,
    /// How to obtain total child counts (the plain/Enhanced split).
    pub mode: ChildCountMode,
    /// Distance charged per intervening text node when two hits are in
    /// different text nodes.
    pub node_distance_factor: f64,
}

impl ComplexScorer {
    /// Complex scorer with the given weights and child-count mode.
    pub fn new(weights: Vec<f64>, mode: ChildCountMode) -> Self {
        ComplexScorer {
            base: SimpleScorer::new(weights),
            mode,
            node_distance_factor: 10.0,
        }
    }

    /// Uniform weights.
    pub fn uniform(mode: ChildCountMode) -> Self {
        ComplexScorer {
            base: SimpleScorer::uniform(),
            mode,
            node_distance_factor: 10.0,
        }
    }

    /// Minimum distance between hits of *different* terms, or `None` when
    /// fewer than two distinct terms are present.
    fn min_cross_term_distance(&self, detail: &[TermHit]) -> Option<f64> {
        if detail.len() < 2 {
            return None;
        }
        let mut hits: Vec<TermHit> = detail.to_vec();
        hits.sort_unstable_by_key(|h| (h.node, h.offset));
        let mut best: Option<f64> = None;
        for pair in hits.windows(2) {
            let &[a, b] = pair else { continue };
            if a.term == b.term {
                continue;
            }
            let d = if a.node == b.node {
                f64::from(b.offset - a.offset)
            } else {
                f64::from(b.node.as_u32() - a.node.as_u32()) * self.node_distance_factor
            };
            best = Some(best.map_or(d, |x: f64| x.min(d)));
        }
        best
    }
}

impl TermJoinScorer for ComplexScorer {
    fn needs_detail(&self) -> bool {
        true
    }

    fn score(
        &self,
        store: &Store,
        node: NodeRef,
        counters: &[u32],
        detail: &[TermHit],
        nonzero_children: u32,
    ) -> f64 {
        // No hits anywhere in the subtree: the product below is zero no
        // matter what, so skip the child-count data access. Checking the
        // integer counters avoids comparing floats for equality.
        if counters.iter().all(|&c| c == 0) {
            return 0.0;
        }
        let base: f64 = counters
            .iter()
            .enumerate()
            .map(|(i, &c)| self.base.weight(i) * f64::from(c))
            .sum();
        let proximity = match self.min_cross_term_distance(detail) {
            Some(d) => 1.0 + 1.0 / (1.0 + d),
            None => 1.0,
        };
        let total_children = match self.mode {
            ChildCountMode::Navigate => store.count_children_by_navigation(node),
            ChildCountMode::Index => store.child_count(node),
        };
        let ratio = if total_children == 0 {
            1.0
        } else {
            f64::from(nonzero_children) / f64::from(total_children)
        };
        base * proximity * ratio
    }

    /// `score = base · proximity · ratio` with `proximity ∈ [1, 2]`
    /// (distances are ≥ 0, so `1/(1+d) ≤ 1`) and `ratio ∈ [0, 1]`
    /// (`nonzero_children ≤ total_children`), so twice the base scorer's
    /// bound covers every configuration.
    fn max_score_bound(&self, remaining: &[u32]) -> f64 {
        2.0 * self.base.max_score_bound(remaining)
    }
}

/// One stack frame: an element on the current occurrence's ancestor chain.
struct Frame {
    node: NodeRef,
    /// Cached end key.
    end: NodeIdx,
    counters: Vec<u32>,
    detail: Vec<TermHit>,
    nonzero_children: u32,
    /// Last direct text child credited to `nonzero_children`.
    last_text_child: Option<NodeIdx>,
}

/// The TermJoin access method as a pull iterator over scored elements.
///
/// Yields every element with at least one query-term occurrence in its
/// subtree, scored by `scorer`. Emission order is *completion* order (an
/// element is emitted once the merge has passed its subtree — postorder);
/// use [`crate::scored::sort_by_node`] for a document-ordered view.
pub struct TermJoin<'a, S: TermJoinScorer> {
    store: &'a Store,
    scorer: &'a S,
    lists: Vec<&'a [Posting]>,
    cursors: Vec<usize>,
    stack: Vec<Frame>,
    pending: VecDeque<ScoredNode>,
    keep_detail: bool,
    exhausted: bool,
}

impl<'a, S: TermJoinScorer> TermJoin<'a, S> {
    /// Set up a TermJoin over `terms`, reading posting lists from `index`.
    pub fn new(
        store: &'a Store,
        index: &'a dyn IndexReader,
        terms: &[&str],
        scorer: &'a S,
    ) -> Self {
        let lists: Vec<&[Posting]> = terms.iter().map(|t| index.postings(t)).collect();
        TermJoin {
            store,
            scorer,
            cursors: vec![0; lists.len()],
            lists,
            stack: Vec::new(),
            pending: VecDeque::new(),
            keep_detail: scorer.needs_detail(),
            exhausted: false,
        }
    }

    /// Set up a TermJoin directly over posting-list slices (in the same
    /// order as the query terms). This is how the document-partitioned
    /// parallel driver hands each worker its slice of the document axis;
    /// `new` is equivalent to `with_lists` over the full lists.
    pub fn with_lists(store: &'a Store, lists: Vec<&'a [Posting]>, scorer: &'a S) -> Self {
        TermJoin {
            store,
            scorer,
            cursors: vec![0; lists.len()],
            lists,
            stack: Vec::new(),
            pending: VecDeque::new(),
            keep_detail: scorer.needs_detail(),
            exhausted: false,
        }
    }

    /// Run to completion and collect all scored elements.
    pub fn run(self) -> Vec<ScoredNode> {
        self.collect()
    }

    /// The next posting across all lists in `(doc, node, offset)` order,
    /// with its term index.
    fn next_min(&mut self) -> Option<(u16, Posting)> {
        let mut best: Option<(usize, Posting)> = None;
        for (i, (list, &cursor)) in self.lists.iter().zip(&self.cursors).enumerate() {
            if let Some(&p) = list.get(cursor) {
                let better = match &best {
                    Some((_, b)) => (p.doc, p.node, p.offset) < (b.doc, b.node, b.offset),
                    None => true,
                };
                if better {
                    best = Some((i, p));
                }
            }
        }
        let (term, posting) = best?;
        if let Some(cursor) = self.cursors.get_mut(term) {
            *cursor += 1;
        }
        Some((u16::try_from(term).unwrap_or(u16::MAX), posting))
    }

    /// True when `frame`'s subtree contains `node` (ancestor-or-self).
    fn covers(frame: &Frame, node: NodeRef) -> bool {
        frame.node.doc == node.doc && frame.node.node <= node.node && node.node <= frame.end
    }

    /// Pop the top frame, fold it into its parent, and emit its score.
    /// A no-op on an empty stack (callers only invoke it with frames left).
    fn pop_and_emit(&mut self) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        if let Some(parent) = self.stack.last_mut() {
            for (pc, fc) in parent.counters.iter_mut().zip(&frame.counters) {
                *pc += fc;
            }
            if self.keep_detail {
                parent.detail.extend_from_slice(&frame.detail);
            }
            // The chain is contiguous, so the popped frame is a *direct*
            // child of the new top; it had at least one hit by construction.
            parent.nonzero_children += 1;
        }
        let score = self.scorer.score(
            self.store,
            frame.node,
            &frame.counters,
            &frame.detail,
            frame.nonzero_children,
        );
        self.pending.push_back(ScoredNode::new(frame.node, score));
    }

    /// Consume one posting: adjust the stack and record the hit.
    fn absorb(&mut self, term: u16, posting: Posting) {
        let text_node = posting.node_ref();
        debug_assert_eq!(self.store.kind(text_node), NodeKind::Text);
        let Some(anchor) = self.store.parent(text_node) else {
            // A text node is never a document root; a parentless posting
            // means the index and store disagree. Drop it rather than panic.
            debug_assert!(false, "posting for a parentless text node");
            return;
        };
        // Pop completed subtrees.
        while let Some(top) = self.stack.last() {
            if Self::covers(top, anchor) {
                break;
            }
            self.pop_and_emit();
        }
        // Push the missing part of the ancestor chain (root → anchor).
        if self.stack.last().map(|f| f.node) != Some(anchor) {
            let stop = self.stack.last().map(|f| f.node);
            let mut chain = vec![anchor];
            let mut cursor = anchor;
            while let Some(parent) = self.store.parent(cursor) {
                if Some(parent) == stop {
                    break;
                }
                chain.push(parent);
                cursor = parent;
            }
            let n_terms = self.lists.len();
            for node in chain.into_iter().rev() {
                self.stack.push(Frame {
                    node,
                    end: self.store.end_key(node),
                    counters: vec![0; n_terms],
                    detail: Vec::new(),
                    nonzero_children: 0,
                    last_text_child: None,
                });
            }
        }
        // Fig. 11's loop invariant: the stack always holds one contiguous
        // ancestor chain, every frame covering the frames above it.
        tix_invariants::check! {
            tix_invariants::assert_stack_ancestor_chain(self.stack.len(), |anc, desc| {
                // lint:allow(no-slice-index): anc/desc < stack.len() by the try_ contract
                let (a, d) = (&self.stack[anc], &self.stack[desc]);
                Self::covers(a, d.node)
            });
        }
        let Some(top) = self.stack.last_mut() else {
            return;
        };
        debug_assert_eq!(top.node, anchor);
        if let Some(counter) = top.counters.get_mut(usize::from(term)) {
            *counter += 1;
        }
        if self.keep_detail {
            top.detail.push(TermHit {
                node: posting.node,
                offset: posting.offset,
                term,
            });
        }
        if top.last_text_child != Some(posting.node) {
            top.nonzero_children += 1;
            top.last_text_child = Some(posting.node);
        }
    }
}

impl<S: TermJoinScorer> Iterator for TermJoin<'_, S> {
    type Item = ScoredNode;

    fn next(&mut self) -> Option<ScoredNode> {
        loop {
            if let Some(out) = self.pending.pop_front() {
                return Some(out);
            }
            if self.exhausted {
                if self.stack.is_empty() {
                    return None;
                }
                self.pop_and_emit();
                continue;
            }
            match self.next_min() {
                Some((term, posting)) => self.absorb(term, posting),
                None => self.exhausted = true,
            }
        }
    }
}

/// Count the direct children of `node` (elements **or text nodes**) whose
/// subtree contains at least one of `hit_nodes` — the `nonzero_children`
/// input that baselines must compute from scratch to match TermJoin's
/// incremental bookkeeping.
pub fn count_nonzero_children<I>(store: &Store, node: NodeRef, hit_nodes: I) -> u32
where
    I: IntoIterator<Item = NodeIdx>,
{
    let level = store.level(node);
    let mut seen: Vec<NodeIdx> = Vec::new();
    for text in hit_nodes {
        let text_ref = NodeRef::new(node.doc, text);
        if !store.is_ancestor(node, text_ref) {
            continue;
        }
        // The child of `node` on the path to `text`: walk up from the text
        // node until one level below `node`.
        let mut cursor = text_ref;
        while store.level(cursor) > level + 1 {
            match store.parent(cursor) {
                Some(parent) => cursor = parent,
                None => break,
            }
        }
        if !seen.contains(&cursor.node) {
            seen.push(cursor.node);
        }
    }
    u32::try_from(seen.len()).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tix_index::InvertedIndex;
    use tix_store::DocId;

    fn fixture() -> (Store, InvertedIndex) {
        let mut store = Store::new();
        // doc 0:
        // a=0 [ b=1 [t=2 "x y"] c=3 [t=4 "x"] d=5 [t=6 "z"] ]
        store
            .load_str("t.xml", "<a><b>x y</b><c>x</c><d>z</d></a>")
            .unwrap();
        let index = InvertedIndex::build(&store);
        (store, index)
    }

    fn nref(doc: u32, i: u32) -> NodeRef {
        NodeRef::new(DocId(doc), NodeIdx(i))
    }

    #[test]
    fn simple_two_terms() {
        let (store, index) = fixture();
        let scorer = SimpleScorer::uniform();
        let out =
            crate::scored::sort_by_node(TermJoin::new(&store, &index, &["x", "y"], &scorer).run());
        // Elements with hits: a (3), b (2), c (1).
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], ScoredNode::new(nref(0, 0), 3.0)); // a
        assert_eq!(out[1], ScoredNode::new(nref(0, 1), 2.0)); // b
        assert_eq!(out[2], ScoredNode::new(nref(0, 3), 1.0)); // c
    }

    #[test]
    fn weights_respected() {
        let (store, index) = fixture();
        let scorer = SimpleScorer::new(vec![0.8, 0.6]);
        let out =
            crate::scored::sort_by_node(TermJoin::new(&store, &index, &["x", "y"], &scorer).run());
        // a: 2x + 1y = 2*0.8 + 0.6 = 2.2
        assert!((out[0].score - 2.2).abs() < 1e-9);
    }

    #[test]
    fn missing_term_is_empty_list() {
        let (store, index) = fixture();
        let scorer = SimpleScorer::uniform();
        let out = TermJoin::new(&store, &index, &["nosuch"], &scorer).run();
        assert!(out.is_empty());
    }

    #[test]
    fn single_term_scores_every_ancestor() {
        let (store, index) = fixture();
        let scorer = SimpleScorer::uniform();
        let out = crate::scored::sort_by_node(TermJoin::new(&store, &index, &["z"], &scorer).run());
        // z occurs once under d: ancestors a and d.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].node, nref(0, 0));
        assert_eq!(out[1].node, nref(0, 5));
    }

    #[test]
    fn multi_document_merge() {
        let mut store = Store::new();
        store.load_str("a.xml", "<a><p>q</p></a>").unwrap();
        store.load_str("b.xml", "<a><p>q q</p></a>").unwrap();
        let index = InvertedIndex::build(&store);
        let scorer = SimpleScorer::uniform();
        let out = crate::scored::sort_by_node(TermJoin::new(&store, &index, &["q"], &scorer).run());
        // Two elements per doc (a, p).
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].node.doc, DocId(0));
        assert_eq!(out[2].node.doc, DocId(1));
        assert_eq!(out[2].score, 2.0);
    }

    #[test]
    fn emission_is_postorder_completion() {
        let (store, index) = fixture();
        let scorer = SimpleScorer::uniform();
        let out: Vec<NodeRef> = TermJoin::new(&store, &index, &["x"], &scorer)
            .map(|s| s.node)
            .collect();
        // b completes before c, which completes before a.
        assert_eq!(out, vec![nref(0, 1), nref(0, 3), nref(0, 0)]);
    }

    #[test]
    fn complex_scorer_ratio() {
        let (store, index) = fixture();
        let scorer = ComplexScorer::uniform(ChildCountMode::Index);
        let out = crate::scored::sort_by_node(TermJoin::new(&store, &index, &["x"], &scorer).run());
        // a has 3 children (b, c, d); two contain "x" → ratio 2/3; base 2.
        let a = out.iter().find(|s| s.node == nref(0, 0)).unwrap();
        assert!(
            (a.score - 2.0 * (2.0 / 3.0)).abs() < 1e-9,
            "got {}",
            a.score
        );
        // b: 1 child (text), nonzero 1 → ratio 1; base 1.
        let b = out.iter().find(|s| s.node == nref(0, 1)).unwrap();
        assert!((b.score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn complex_modes_agree_on_scores() {
        let (store, index) = fixture();
        let nav = ComplexScorer::uniform(ChildCountMode::Navigate);
        let idx = ComplexScorer::uniform(ChildCountMode::Index);
        let out_nav =
            crate::scored::sort_by_node(TermJoin::new(&store, &index, &["x", "y"], &nav).run());
        let out_idx =
            crate::scored::sort_by_node(TermJoin::new(&store, &index, &["x", "y"], &idx).run());
        assert!(crate::scored::results_equal(&out_nav, &out_idx, 1e-12));
    }

    #[test]
    fn complex_proximity_boost() {
        let mut store = Store::new();
        // "u v" adjacent in one paragraph; "u ... v" far apart in another.
        store
            .load_str("t.xml", "<r><p>u v</p><p>u w w w w w w w v</p></r>")
            .unwrap();
        let index = InvertedIndex::build(&store);
        let scorer = ComplexScorer::uniform(ChildCountMode::Index);
        let out =
            crate::scored::sort_by_node(TermJoin::new(&store, &index, &["u", "v"], &scorer).run());
        // p1 (node 1) has distance 1; p2 (node 3) distance 8.
        let p1 = out.iter().find(|s| s.node == nref(0, 1)).unwrap();
        let p2 = out.iter().find(|s| s.node == nref(0, 3)).unwrap();
        assert!(p1.score > p2.score, "p1 {} p2 {}", p1.score, p2.score);
    }

    #[test]
    fn count_nonzero_children_helper_agrees() {
        let (store, index) = fixture();
        // For node a: hits of "x" are in text nodes 2 and 4 → children b, c.
        let hits: Vec<NodeIdx> = index.postings("x").iter().map(|p| p.node).collect();
        assert_eq!(count_nonzero_children(&store, nref(0, 0), hits.clone()), 2);
        assert_eq!(count_nonzero_children(&store, nref(0, 1), hits), 1);
    }
}

/// A tf·idf-weighted TermJoin scorer: each term's subtree count is weighted
/// by its inverse document frequency, so rare query terms dominate — the
/// "meaningful score, such as the popular tf*idf measure" of Sec. 5.1.
///
/// Build it from the index before running the join (idf values are
/// constants of the query, not of the scored node).
#[derive(Debug, Clone)]
pub struct IdfScorer {
    idf: Vec<f64>,
}

impl IdfScorer {
    /// Precompute idf weights for `terms` against `index`.
    pub fn new(index: &dyn IndexReader, total_docs: usize, terms: &[&str]) -> Self {
        IdfScorer {
            idf: terms.iter().map(|t| index.idf(t, total_docs)).collect(),
        }
    }
}

impl TermJoinScorer for IdfScorer {
    fn needs_detail(&self) -> bool {
        false
    }

    fn score(
        &self,
        _store: &Store,
        _node: NodeRef,
        counters: &[u32],
        _detail: &[TermHit],
        _nonzero_children: u32,
    ) -> f64 {
        counters
            .iter()
            .zip(&self.idf)
            .map(|(&c, &w)| f64::from(c) * w)
            .sum()
    }

    /// Σᵢ max(idfᵢ, 0) · remainingᵢ (smoothed idf is non-negative; the
    /// clamp keeps the bound sound for hand-built weight vectors too).
    fn max_score_bound(&self, remaining: &[u32]) -> f64 {
        remaining
            .iter()
            .zip(&self.idf)
            .map(|(&c, &w)| w.max(0.0) * f64::from(c))
            .sum()
    }
}
