//! Stack-based structural join — the primitive of the stack-tree family
//! ([2, 6, 9] in the paper) that TermJoin generalizes, and the building
//! block of the Comp2 baseline.

use tix_store::{NodeRef, Store};

/// One merge pass over two document-ordered element lists, producing for
/// each ancestor candidate the number of descendant-candidates contained
/// in its subtree (ancestors with zero matches are not emitted).
///
/// `ancestors` and `descendants` must each be sorted in global document
/// order. Output is in ancestor *completion* (postorder) order.
///
/// This is the counting variant of stack-tree-desc: the Comp2 baseline
/// runs it per term with `ancestors` = the full element list.
pub fn structural_join_count(
    store: &Store,
    ancestors: impl IntoIterator<Item = NodeRef>,
    descendants: &[NodeRef],
) -> Vec<(NodeRef, u32)> {
    // Stack frames: (ancestor, cached end key, count). The stack is always
    // a containment chain, so a popped frame's count folds into the frame
    // below it.
    let mut stack: Vec<(NodeRef, u32, u32)> = Vec::new();
    let mut out = Vec::new();
    let mut anc_iter = ancestors.into_iter().peekable();
    let mut d = 0usize;

    fn covers(frame: &(NodeRef, u32, u32), node: NodeRef) -> bool {
        frame.0.doc == node.doc && frame.0.node <= node.node && node.node.as_u32() <= frame.1
    }

    fn pop(stack: &mut Vec<(NodeRef, u32, u32)>, out: &mut Vec<(NodeRef, u32)>) {
        let Some((node, _, count)) = stack.pop() else {
            return;
        };
        if let Some(below) = stack.last_mut() {
            below.2 += count;
        }
        if count > 0 {
            out.push((node, count));
        }
    }

    loop {
        // Decide the next event: the smaller of the two list heads, with
        // ancestors winning ties so that a node present in both lists
        // self-matches.
        let (take_ancestor, event) = match (anc_iter.peek(), descendants.get(d)) {
            (Some(&a), Some(&dd)) => {
                if a <= dd {
                    (true, a)
                } else {
                    (false, dd)
                }
            }
            (Some(&a), None) => (true, a),
            (None, Some(&dd)) => (false, dd),
            (None, None) => break,
        };
        // Retire frames whose subtree lies entirely before the event.
        while let Some(top) = stack.last() {
            if covers(top, event) {
                break;
            }
            pop(&mut stack, &mut out);
        }
        if take_ancestor {
            anc_iter.next();
            stack.push((event, store.end_key(event).as_u32(), 0));
        } else {
            // Credit the deepest covering frame; propagation on pop carries
            // the count to every enclosing ancestor.
            if let Some(top) = stack.last_mut() {
                top.2 += 1;
            }
            d += 1;
        }
    }
    while !stack.is_empty() {
        pop(&mut stack, &mut out);
    }
    out
}

/// Reference nested-loop implementation for differential testing.
pub fn nested_loop_join_count(
    store: &Store,
    ancestors: impl IntoIterator<Item = NodeRef>,
    descendants: &[NodeRef],
) -> Vec<(NodeRef, u32)> {
    let mut out = Vec::new();
    for anc in ancestors {
        let count = descendants
            .iter()
            .filter(|&&d| anc == d || store.is_ancestor(anc, d))
            .count() as u32;
        if count > 0 {
            out.push((anc, count));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tix_store::{DocId, NodeIdx};

    fn nref(doc: u32, i: u32) -> NodeRef {
        NodeRef::new(DocId(doc), NodeIdx(i))
    }

    fn sorted(mut v: Vec<(NodeRef, u32)>) -> Vec<(NodeRef, u32)> {
        v.sort_by_key(|&(n, _)| n);
        v
    }

    #[test]
    fn counts_match_nested_loop() {
        let mut store = Store::new();
        store
            .load_str("t.xml", "<a><b><c/><c/></b><d><c/></d><c/></a>")
            .unwrap();
        // ancestors: all elements; descendants: all <c>.
        let ancestors: Vec<NodeRef> = store.elements_of(DocId(0)).collect();
        let descendants = store.elements_with_tag("c").to_vec();
        let fast = sorted(structural_join_count(
            &store,
            ancestors.clone(),
            &descendants,
        ));
        let slow = sorted(nested_loop_join_count(&store, ancestors, &descendants));
        assert_eq!(fast, slow);
        // a contains 4 c's (and c self-matches count too).
        let a = fast.iter().find(|(n, _)| *n == nref(0, 0)).unwrap();
        assert_eq!(a.1, 4);
    }

    #[test]
    fn empty_descendants() {
        let mut store = Store::new();
        store.load_str("t.xml", "<a><b/></a>").unwrap();
        let ancestors: Vec<NodeRef> = store.elements_of(DocId(0)).collect();
        assert!(structural_join_count(&store, ancestors, &[]).is_empty());
    }

    #[test]
    fn cross_document() {
        let mut store = Store::new();
        store.load_str("a.xml", "<a><x/></a>").unwrap();
        store.load_str("b.xml", "<a><x/></a>").unwrap();
        let ancestors: Vec<NodeRef> = store.doc_ids().flat_map(|d| store.elements_of(d)).collect();
        let descendants = store.elements_with_tag("x").to_vec();
        let fast = sorted(structural_join_count(
            &store,
            ancestors.clone(),
            &descendants,
        ));
        let slow = sorted(nested_loop_join_count(&store, ancestors, &descendants));
        assert_eq!(fast, slow);
        assert_eq!(fast.len(), 4); // both a's and both x's (self-match)
    }
}

/// The pair-producing variant of the stack-tree structural join: emits
/// every `(ancestor, descendant)` pair with `ancestor.start ≤
/// descendant.start ≤ ancestor.end`. Output is grouped by descendant in
/// document order (the inner chain enumerated innermost-first).
///
/// This is the primitive of Al-Khalifa et al.'s ICDE 2001 stack-tree
/// family that the counting variant above specializes; pattern matchers
/// that need witnesses (rather than counts) use this one.
pub fn structural_join_pairs(
    store: &Store,
    ancestors: impl IntoIterator<Item = NodeRef>,
    descendants: &[NodeRef],
) -> Vec<(NodeRef, NodeRef)> {
    let mut stack: Vec<(NodeRef, u32)> = Vec::new();
    let mut out = Vec::new();
    let mut anc_iter = ancestors.into_iter().peekable();
    let mut d = 0usize;
    loop {
        let (take_ancestor, event) = match (anc_iter.peek(), descendants.get(d)) {
            (Some(&a), Some(&dd)) => {
                if a <= dd {
                    (true, a)
                } else {
                    (false, dd)
                }
            }
            (Some(&a), None) => (true, a),
            (None, Some(&dd)) => (false, dd),
            (None, None) => break,
        };
        while let Some(&(top, end)) = stack.last() {
            let covers =
                top.doc == event.doc && top.node <= event.node && event.node.as_u32() <= end;
            if covers {
                break;
            }
            stack.pop();
        }
        if take_ancestor {
            anc_iter.next();
            stack.push((event, store.end_key(event).as_u32()));
        } else {
            for &(anc, _) in stack.iter().rev() {
                out.push((anc, event));
            }
            d += 1;
        }
    }
    out
}

#[cfg(test)]
mod pair_tests {
    use super::*;
    use tix_store::{DocId, NodeIdx};

    fn nref(i: u32) -> NodeRef {
        NodeRef::new(DocId(0), NodeIdx(i))
    }

    #[test]
    fn pairs_match_nested_loop() {
        let mut store = Store::new();
        store
            .load_str("t.xml", "<a><b><c/><c/></b><d><c/></d></a>")
            .unwrap();
        let ancestors: Vec<NodeRef> = store.elements_of(DocId(0)).collect();
        let descendants = store.elements_with_tag("c").to_vec();
        let mut fast = structural_join_pairs(&store, ancestors.clone(), &descendants);
        let mut slow: Vec<(NodeRef, NodeRef)> = Vec::new();
        for &a in &ancestors {
            for &d in &descendants {
                if a == d || store.is_ancestor(a, d) {
                    slow.push((a, d));
                }
            }
        }
        fast.sort();
        slow.sort();
        assert_eq!(fast, slow);
    }

    #[test]
    fn pairs_empty_inputs() {
        let mut store = Store::new();
        store.load_str("t.xml", "<a/>").unwrap();
        assert!(structural_join_pairs(&store, std::iter::empty(), &[nref(0)]).is_empty());
        assert!(structural_join_pairs(&store, [nref(0)], &[]).is_empty());
    }
}
