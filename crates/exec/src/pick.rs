//! The stack-based **Pick** access method (Fig. 12 of the paper).
//!
//! Input: a document-ordered stream of scored elements (e.g. straight out
//! of TermJoin + projection). The algorithm reconstructs the containment
//! hierarchy *within the input set* with a single stack pass, evaluates
//! the worth of every node (the `DetWorth` decision needs all of a node's
//! children — which is why the paper calls the operator *blocking*), and
//! then resolves the parent/child redundancy rule top-down.
//!
//! Semantics are identical to the reference implementation in
//! `tix_core::ops::pick` (differential-tested): a node is picked iff it is
//! worth returning and its direct parent (within the input set) is not
//! itself picked.

use tix_store::{NodeRef, Store};

use crate::scored::ScoredNode;

/// Parameters of the paper's `PickFoo` criterion: relevance threshold and
/// required fraction of relevant children (Sec. 3.3.2 / Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PickParams {
    /// Minimum score for a node to count as relevant (paper: 0.8).
    pub relevance_threshold: f64,
    /// Exclusive fraction of relevant children required for an internal
    /// node to be worth returning (paper: 0.5).
    pub fraction: f64,
}

impl PickParams {
    /// The paper's parameters: threshold 0.8, fraction 50 %.
    pub fn paper() -> Self {
        PickParams {
            relevance_threshold: 0.8,
            fraction: 0.5,
        }
    }

    /// Derive the relevance threshold from a score distribution instead of
    /// asking the user for an absolute value — the paper's Sec. 5.3: "it is
    /// often unrealistic to ask the users for the exact relevance score
    /// threshold since they have no idea of the distribution of the scores
    /// for a given query. Auxiliary data like [a] histogram … enables the
    /// user to specify such scores more flexibly".
    ///
    /// `quantile` = 0.9 makes the top 10 % of scored nodes "relevant".
    pub fn from_histogram(
        histogram: &tix_core::histogram::ScoreHistogram,
        quantile: f64,
        fraction: f64,
    ) -> Self {
        PickParams {
            relevance_threshold: histogram.quantile(quantile),
            fraction,
        }
    }

    /// Build the score histogram for a scored stream and derive the
    /// threshold from `quantile` in one step.
    pub fn from_scores(scored: &[ScoredNode], quantile: f64, fraction: f64) -> Self {
        let histogram =
            tix_core::histogram::ScoreHistogram::build(scored.iter().map(|s| s.score), 64);
        Self::from_histogram(&histogram, quantile, fraction)
    }
}

/// Per-node state collected by the stack pass.
#[derive(Debug, Clone, Copy)]
struct NodeState {
    /// Index of the nearest input-set ancestor, if any.
    parent: Option<usize>,
    children: u32,
    relevant_children: u32,
}

/// Run the stack-based Pick over `scored` (must be sorted in document
/// order) and return the picked nodes, in document order.
///
/// One pass builds, per input node, its child statistics *within the input
/// set* (nearest-ancestor containment, like the scored-tree view the
/// algebra operator sees). A second, top-down pass applies the
/// worth/parent rule. Both passes are O(n) — the cost the paper's Pick
/// experiment measures for 200 to 55 000 input nodes.
pub fn pick_stream(store: &Store, scored: &[ScoredNode], params: &PickParams) -> Vec<ScoredNode> {
    let n = scored.len();
    // Fig. 12 precondition: the stream is unique and document-ordered.
    tix_invariants::check! {
        tix_invariants::assert_stream_sorted_unique(n, |i| {
            // lint:allow(no-slice-index): i < n by the try_ contract
            let s = &scored[i];
            (s.node.doc.0, s.node.node.as_u32())
        });
    }
    let mut states: Vec<NodeState> = vec![
        NodeState {
            parent: None,
            children: 0,
            relevant_children: 0
        };
        n
    ];
    // Stack of (input index, node, end key) — the containment chain.
    let mut stack: Vec<(usize, NodeRef, u32)> = Vec::new();
    for (i, s) in scored.iter().enumerate() {
        while let Some(&(_, top, end)) = stack.last() {
            let covers = top.doc == s.node.doc && s.node.node.as_u32() <= end;
            if covers {
                break;
            }
            stack.pop();
        }
        if let Some(&(parent_idx, _, _)) = stack.last() {
            if let Some(state) = states.get_mut(i) {
                state.parent = Some(parent_idx);
            }
            if let Some(parent_state) = states.get_mut(parent_idx) {
                parent_state.children += 1;
                if s.score >= params.relevance_threshold {
                    parent_state.relevant_children += 1;
                }
            }
        }
        stack.push((i, s.node, store.end_key(s.node).as_u32()));
    }
    // The nearest-ancestor pass leaves parentless nodes exactly when no
    // other input node covers them, so the input-set roots must form an
    // antichain of regions (§4.3).
    tix_invariants::check! {
        let roots: Vec<(u32, u32, u32)> = scored
            .iter()
            .zip(&states)
            .filter(|(_, st)| st.parent.is_none())
            .map(|(s, _)| {
                (
                    s.node.doc.0,
                    s.node.node.as_u32(),
                    store.end_key(s.node).as_u32(),
                )
            })
            .collect();
        tix_invariants::assert_antichain(roots.len(), |i| {
            // lint:allow(no-slice-index): i < roots.len() by the try_ contract
            roots[i]
        });
    }
    // Top-down resolution (parents precede children in document order).
    let mut picked = vec![false; n];
    for (i, (s, state)) in scored.iter().zip(&states).enumerate() {
        let worth = if state.children == 0 {
            s.score >= params.relevance_threshold
        } else {
            f64::from(state.relevant_children) / f64::from(state.children) > params.fraction
        };
        let parent_picked = state
            .parent
            .is_some_and(|p| picked.get(p).copied().unwrap_or(false));
        if let Some(slot) = picked.get_mut(i) {
            *slot = worth && !parent_picked;
        }
    }
    // §4.3 vertical exclusivity on the output, same rule as the algebra
    // operator in tix-core.
    tix_invariants::check! {
        tix_invariants::assert_picked_exclusive(
            n,
            |i| picked.get(i).copied().unwrap_or(false),
            |i| states.get(i).and_then(|st| st.parent),
        );
    }
    scored
        .iter()
        .zip(&picked)
        .filter(|(_, &p)| p)
        .map(|(s, _)| *s)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tix_store::{DocId, NodeIdx};

    fn fixture() -> Store {
        let mut store = Store::new();
        // root=0 title=1 chap=2 s1=3 t1=4 s2=5 t2=6 s3=7 p1=8 p2=9 p3=10
        store
            .load_str(
                "t.xml",
                "<root><title/><chap><s1><t1/></s1><s2><t2/></s2>\
                 <s3><p1/><p2/><p3/></s3></chap></root>",
            )
            .unwrap();
        store
    }

    fn sn(i: u32, score: f64) -> ScoredNode {
        ScoredNode::new(NodeRef::new(DocId(0), NodeIdx(i)), score)
    }

    /// The Fig. 6 → Fig. 8 scenario of the paper, at stream level.
    #[test]
    fn fig8_scenario() {
        let store = fixture();
        let scored = vec![
            sn(0, 5.6),
            sn(1, 0.6),
            sn(2, 5.0),
            sn(3, 0.8),
            sn(4, 0.8),
            sn(5, 0.6),
            sn(6, 0.6),
            sn(7, 3.6),
            sn(8, 0.8),
            sn(9, 1.4),
            sn(10, 1.4),
        ];
        let picked = pick_stream(&store, &scored, &PickParams::paper());
        let nodes: Vec<u32> = picked.iter().map(|s| s.node.node.as_u32()).collect();
        // chap, t1 (leaf under unpicked s1), p1, p2, p3.
        assert_eq!(nodes, vec![2, 4, 8, 9, 10]);
    }

    #[test]
    fn all_irrelevant_picks_nothing() {
        let store = fixture();
        let scored = vec![sn(0, 0.1), sn(2, 0.2), sn(8, 0.3)];
        assert!(pick_stream(&store, &scored, &PickParams::paper()).is_empty());
    }

    #[test]
    fn single_relevant_leaf() {
        let store = fixture();
        let scored = vec![sn(8, 2.0)];
        let picked = pick_stream(&store, &scored, &PickParams::paper());
        assert_eq!(picked, vec![sn(8, 2.0)]);
    }

    #[test]
    fn parent_and_child_never_both_picked() {
        let store = fixture();
        // Parent with one relevant child (100% > 50% → parent worth) and
        // the child itself relevant.
        let scored = vec![sn(7, 1.0), sn(8, 1.0)];
        let picked = pick_stream(&store, &scored, &PickParams::paper());
        // Parent picked, child suppressed.
        assert_eq!(picked, vec![sn(7, 1.0)]);
    }

    #[test]
    fn grandchild_can_be_picked_when_parent_unpicked() {
        let store = fixture();
        // root (1/2 children relevant → not worth), chap not in input,
        // s3 (3 children, all relevant → worth)... then p's suppressed.
        let scored = vec![
            sn(0, 0.1),
            sn(1, 0.1),
            sn(7, 2.0),
            sn(8, 1.0),
            sn(9, 1.0),
            sn(10, 1.0),
        ];
        let picked = pick_stream(&store, &scored, &PickParams::paper());
        let nodes: Vec<u32> = picked.iter().map(|s| s.node.node.as_u32()).collect();
        assert_eq!(nodes, vec![7]);
    }

    #[test]
    fn histogram_derived_threshold() {
        let store = fixture();
        let scored: Vec<ScoredNode> = (0..10).map(|i| sn(i, i as f64)).collect();
        // Top ~20% of a 0..9 score range → threshold near 7.2.
        let params = PickParams::from_scores(&scored, 0.8, 0.5);
        assert!(params.relevance_threshold > 6.0 && params.relevance_threshold < 8.5);
        let picked = pick_stream(&store, &scored[..1], &params);
        assert!(picked.is_empty()); // score 0 is nowhere near the quantile
    }

    #[test]
    fn cross_document_streams() {
        let mut store = Store::new();
        store.load_str("a.xml", "<a><b/></a>").unwrap();
        store.load_str("b.xml", "<a><b/></a>").unwrap();
        let scored = vec![
            ScoredNode::new(NodeRef::new(DocId(0), NodeIdx(1)), 1.0),
            ScoredNode::new(NodeRef::new(DocId(1), NodeIdx(1)), 1.0),
        ];
        let picked = pick_stream(&store, &scored, &PickParams::paper());
        assert_eq!(picked.len(), 2);
    }
}
