//! Property-based differential tests on *randomized corpus collections* —
//! the generator's article shape with randomized seeds, sizes, and plant
//! densities. Complements `proptest_diff.rs` (arbitrary XML shapes) with
//! the regular, deep, multi-document trees the paper's experiments use.
//!
//! Every access method is checked against its baseline on every generated
//! collection:
//!
//! * TermJoin (simple + complex scorer, both [`ChildCountMode`]s) vs
//!   `composite::comp1`, `composite::comp2`, `meet::generalized_meet`;
//! * `phrase_finder` vs `phrase::comp3`;
//! * `pick_stream` vs the `tix-core` reference (`ops::picked_entries`).
//!
//! Case counts are deliberately low (corpus generation dominates the cost);
//! `PROPTEST_CASES` scales them up for a soak run.

use proptest::prelude::*;
use tix_corpus::{CorpusSpec, Generator, PlantSpec};
use tix_exec::composite::{comp1, comp2};
use tix_exec::meet::generalized_meet;
use tix_exec::phrase::{comp3, phrase_finder};
use tix_exec::pick::{pick_stream, PickParams};
use tix_exec::scored::{results_equal, sort_by_node, ScoredNode};
use tix_exec::termjoin::{ChildCountMode, ComplexScorer, SimpleScorer, TermJoin, TermJoinScorer};
use tix_index::InvertedIndex;
use tix_store::Store;

/// A randomized collection: corpus shape, seed, and plant densities.
#[derive(Debug, Clone)]
struct Collection {
    articles: usize,
    seed: u64,
    alpha: usize,
    beta: usize,
    gamma: usize,
    adjacent: usize,
    cooccurring: usize,
}

fn collection_strategy() -> impl Strategy<Value = Collection> {
    (
        1usize..6,
        0u64..1 << 32,
        0usize..25,
        0usize..12,
        0usize..6,
        0usize..8,
        0usize..8,
    )
        .prop_map(
            |(articles, seed, alpha, beta, gamma, adjacent, cooccurring)| Collection {
                articles,
                seed,
                alpha,
                beta,
                gamma,
                adjacent,
                cooccurring,
            },
        )
}

fn build(c: &Collection) -> (Store, InvertedIndex) {
    let spec = CorpusSpec {
        articles: c.articles,
        seed: c.seed,
        ..CorpusSpec::tiny()
    };
    let plants = PlantSpec::default()
        .with_term("alpha", c.alpha)
        .with_term("beta", c.beta)
        .with_term("gamma", c.gamma)
        .with_phrase("srch", "engn", c.adjacent, c.cooccurring);
    let generator = Generator::new(spec, plants).expect("plants fit the tiny shape");
    let mut store = Store::new();
    generator.load_into(&mut store).expect("corpus loads");
    let index = InvertedIndex::build(&store);
    (store, index)
}

/// Panics (inside the proptest harness, which reports the failing inputs)
/// unless all four score-generating methods agree on `terms`.
fn assert_termjoin_agrees<S: TermJoinScorer>(
    store: &Store,
    index: &InvertedIndex,
    terms: &[&str],
    scorer: &S,
    label: &str,
) {
    let tj = sort_by_node(TermJoin::new(store, index, terms, scorer).run());
    let c1 = sort_by_node(comp1(store, index, terms, scorer));
    let c2 = sort_by_node(comp2(store, index, terms, scorer));
    let gm = sort_by_node(generalized_meet(store, index, terms, scorer));
    assert!(results_equal(&tj, &c1, 1e-9), "{label}: TermJoin vs Comp1");
    assert!(results_equal(&tj, &c2, 1e-9), "{label}: TermJoin vs Comp2");
    assert!(results_equal(&tj, &gm, 1e-9), "{label}: TermJoin vs Meet");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn termjoin_simple_agrees_on_random_collections(c in collection_strategy()) {
        let (store, index) = build(&c);
        let scorer = SimpleScorer::new(vec![0.8, 0.6, 0.4]);
        assert_termjoin_agrees(&store, &index, &["alpha", "beta"], &scorer, "2-term");
        assert_termjoin_agrees(&store, &index, &["alpha", "beta", "gamma"], &scorer, "3-term");
        // Background Zipf terms share text nodes with the plants.
        assert_termjoin_agrees(&store, &index, &["alpha", "w0"], &scorer, "mixed");
    }

    #[test]
    fn termjoin_complex_agrees_on_random_collections(c in collection_strategy()) {
        let (store, index) = build(&c);
        for mode in [ChildCountMode::Index, ChildCountMode::Navigate] {
            let scorer = ComplexScorer::uniform(mode);
            assert_termjoin_agrees(
                &store,
                &index,
                &["alpha", "beta"],
                &scorer,
                &format!("{mode:?}"),
            );
        }
    }

    #[test]
    fn phrase_finder_agrees_on_random_collections(c in collection_strategy()) {
        let (store, index) = build(&c);
        // The planted phrase, its reversal (matches only by accident), and a
        // background bigram.
        for pair in [["srch", "engn"], ["engn", "srch"], ["w0", "w1"]] {
            let pf = sort_by_node(phrase_finder(&store, &index, pair.as_ref()));
            let c3 = sort_by_node(comp3(&store, &index, pair.as_ref()));
            prop_assert!(results_equal(&pf, &c3, 1e-12), "{pair:?}\npf={pf:?}\nc3={c3:?}");
        }
        // Every planted adjacency is found.
        let pf = phrase_finder(&store, &index, &["srch", "engn"]);
        let total: f64 = pf.iter().map(|s| s.score).sum();
        prop_assert!(total >= c.adjacent as f64, "found {total} < planted {}", c.adjacent);
    }

    #[test]
    fn pick_stream_agrees_on_random_collections(
        c in collection_strategy(),
        threshold_tenths in 0u32..30,
        fraction_tenths in 0u32..10,
    ) {
        use tix_core::ops::{picked_entries, FractionPick};
        use tix_core::pattern::PatternNodeId;
        use tix_core::ScoredTree;

        let (store, index) = build(&c);
        let scorer = SimpleScorer::new(vec![1.0, 0.7]);
        let scored =
            sort_by_node(TermJoin::new(&store, &index, &["alpha", "beta"], &scorer).run());

        let params = PickParams {
            relevance_threshold: threshold_tenths as f64 / 10.0,
            fraction: fraction_tenths as f64 / 10.0,
        };
        let picked_fast = pick_stream(&store, &scored, &params);

        let var = PatternNodeId(4);
        let tree = ScoredTree::from_stored(
            &store,
            scored.iter().map(|s| (s.node, Some(s.score), vec![var])).collect(),
        );
        let criterion = FractionPick {
            relevance_threshold: params.relevance_threshold,
            fraction: params.fraction,
        };
        let picked_ref = picked_entries(&tree, var, &criterion);
        let expected: Vec<ScoredNode> = tree
            .entries()
            .iter()
            .zip(&picked_ref)
            .filter(|(_, &p)| p)
            .map(|(e, _)| ScoredNode::new(e.source.stored().unwrap(), e.score.unwrap()))
            .collect();
        prop_assert!(
            results_equal(&picked_fast, &expected, 1e-12),
            "{params:?}\nfast={picked_fast:?}\nref={expected:?}"
        );
    }
}
