//! Property tests on operator invariants that differential tests don't
//! cover: score-modifying algebra laws and stream-adapter semantics.

use proptest::prelude::*;
use tix_exec::modify::{scored_union, Combine};
use tix_exec::scored::ScoredNode;
use tix_exec::topk;
use tix_store::{DocId, NodeIdx, NodeRef};

fn scored_set() -> impl Strategy<Value = Vec<ScoredNode>> {
    prop::collection::btree_map(0u32..40, 0u32..100, 0..12).prop_map(|m| {
        m.into_iter()
            .map(|(node, score)| {
                ScoredNode::new(NodeRef::new(DocId(0), NodeIdx(node)), score as f64 / 4.0)
            })
            .collect()
    })
}

proptest! {
    /// Union with equal weights and WeightedSum is commutative.
    #[test]
    fn union_commutative(a in scored_set(), b in scored_set()) {
        let ab = scored_union(&a, &b, 1.0, 1.0, Combine::WeightedSum);
        let ba = scored_union(&b, &a, 1.0, 1.0, Combine::WeightedSum);
        prop_assert_eq!(ab, ba);
    }

    /// Union against the empty set with weight 1 is the identity.
    #[test]
    fn union_identity(a in scored_set()) {
        let u = scored_union(&a, &[], 1.0, 1.0, Combine::WeightedSum);
        prop_assert_eq!(u, a);
    }

    /// The union's node set is exactly the set union of the inputs, in
    /// document order.
    #[test]
    fn union_covers_both(a in scored_set(), b in scored_set()) {
        let u = scored_union(&a, &b, 1.0, 1.0, Combine::Max);
        let mut expected: Vec<NodeRef> =
            a.iter().chain(&b).map(|s| s.node).collect();
        expected.sort();
        expected.dedup();
        let got: Vec<NodeRef> = u.iter().map(|s| s.node).collect();
        prop_assert_eq!(got, expected);
    }

    /// top_k returns the k highest scores of the input, descending.
    #[test]
    fn top_k_is_sorted_prefix(a in scored_set(), k in 0usize..16) {
        let top = topk::top_k(a.clone(), k);
        prop_assert!(top.len() <= k.min(a.len()));
        prop_assert!(top.windows(2).all(|w| w[0].score >= w[1].score));
        // No input element outscores the worst member of a full top-k.
        if top.len() == k && k > 0 {
            let cutoff = top.last().unwrap().score;
            let better = a.iter().filter(|s| s.score > cutoff).count();
            prop_assert!(better <= k);
        }
    }

    /// min_score is exactly a filter.
    #[test]
    fn min_score_is_filter(a in scored_set(), min in 0u32..100) {
        let min = min as f64 / 4.0;
        let kept = topk::min_score(a.clone(), min);
        let expected: Vec<ScoredNode> =
            a.into_iter().filter(|s| s.score > min).collect();
        prop_assert_eq!(kept, expected);
    }
}
