//! Differential tests: every access method must produce results identical
//! to its baseline / reference implementation on randomized corpora. This
//! is the correctness backbone of the reproduction — the paper's Table 1–5
//! comparisons are only meaningful because all methods compute the same
//! answer.

use tix_corpus::{CorpusSpec, Generator, PlantSpec};
use tix_exec::composite::{comp1, comp2};
use tix_exec::meet::generalized_meet;
use tix_exec::phrase::{comp3, phrase_finder};
use tix_exec::pick::{pick_stream, PickParams};
use tix_exec::scored::{results_equal, sort_by_node, ScoredNode};
use tix_exec::termjoin::{ChildCountMode, ComplexScorer, SimpleScorer, TermJoin, TermJoinScorer};
use tix_index::InvertedIndex;
use tix_store::Store;

fn corpus(seed: u64, plants: PlantSpec) -> (Store, InvertedIndex) {
    let spec = CorpusSpec {
        seed,
        ..CorpusSpec::tiny()
    };
    let generator = Generator::new(spec, plants).unwrap();
    let mut store = Store::new();
    generator.load_into(&mut store).unwrap();
    let index = InvertedIndex::build(&store);
    (store, index)
}

fn assert_all_agree<S: TermJoinScorer>(
    store: &Store,
    index: &InvertedIndex,
    terms: &[&str],
    scorer: &S,
    label: &str,
) {
    let tj = sort_by_node(TermJoin::new(store, index, terms, scorer).run());
    let c1 = sort_by_node(comp1(store, index, terms, scorer));
    let c2 = sort_by_node(comp2(store, index, terms, scorer));
    let gm = sort_by_node(generalized_meet(store, index, terms, scorer));
    assert!(results_equal(&tj, &c1, 1e-9), "{label}: TermJoin vs Comp1");
    assert!(results_equal(&tj, &c2, 1e-9), "{label}: TermJoin vs Comp2");
    assert!(results_equal(&tj, &gm, 1e-9), "{label}: TermJoin vs Meet");
}

#[test]
fn termjoin_simple_all_methods_agree() {
    for seed in 0..5u64 {
        let plants = PlantSpec::default()
            .with_term("alpha", 30)
            .with_term("beta", 12)
            .with_term("gamma", 3);
        let (store, index) = corpus(seed, plants);
        let scorer = SimpleScorer::new(vec![0.8, 0.6]);
        assert_all_agree(
            &store,
            &index,
            &["alpha", "beta"],
            &scorer,
            &format!("seed {seed}"),
        );
        assert_all_agree(
            &store,
            &index,
            &["alpha", "beta", "gamma"],
            &scorer,
            &format!("seed {seed} 3-term"),
        );
    }
}

#[test]
fn termjoin_complex_all_methods_agree() {
    for seed in 100..104u64 {
        let plants = PlantSpec::default()
            .with_term("alpha", 25)
            .with_term("beta", 10);
        let (store, index) = corpus(seed, plants);
        for mode in [ChildCountMode::Index, ChildCountMode::Navigate] {
            let scorer = ComplexScorer::uniform(mode);
            assert_all_agree(
                &store,
                &index,
                &["alpha", "beta"],
                &scorer,
                &format!("seed {seed} mode {mode:?}"),
            );
        }
    }
}

#[test]
fn termjoin_on_background_terms() {
    // Background Zipf terms (uncontrolled frequencies, shared text nodes).
    let (store, index) = corpus(7, PlantSpec::default());
    let scorer = SimpleScorer::uniform();
    assert_all_agree(&store, &index, &["w0", "w1"], &scorer, "background w0/w1");
    let complex = ComplexScorer::uniform(ChildCountMode::Index);
    assert_all_agree(
        &store,
        &index,
        &["w0", "w3"],
        &complex,
        "background complex",
    );
}

#[test]
fn termjoin_output_covers_exactly_ancestors_of_hits() {
    let plants = PlantSpec::default().with_term("needle", 8);
    let (store, index) = corpus(42, plants);
    let scorer = SimpleScorer::uniform();
    let out = sort_by_node(TermJoin::new(&store, &index, &["needle"], &scorer).run());
    // Reference: the set of ancestors of posting text nodes.
    let mut expected: Vec<_> = index
        .postings("needle")
        .iter()
        .flat_map(|p| store.ancestors(p.node_ref()))
        .collect();
    expected.sort();
    expected.dedup();
    let got: Vec<_> = out.iter().map(|s| s.node).collect();
    assert_eq!(got, expected);
    // And each score equals the subtree occurrence count.
    for s in &out {
        let count = index.count_in_subtree(&store, "needle", s.node);
        assert!((s.score - count as f64).abs() < 1e-9);
    }
}

#[test]
fn phrase_finder_agrees_with_comp3_on_planted_phrases() {
    for seed in 0..5u64 {
        let plants = PlantSpec::default()
            .with_phrase("srch", "engn", 12, 20)
            .with_term("srch", 15)
            .with_term("engn", 9);
        let (store, index) = corpus(seed, plants);
        let pf = sort_by_node(phrase_finder(&store, &index, &["srch", "engn"]));
        let c3 = sort_by_node(comp3(&store, &index, &["srch", "engn"]));
        assert!(
            results_equal(&pf, &c3, 1e-12),
            "seed {seed}\npf={pf:?}\nc3={c3:?}"
        );
        // Every planted adjacency is found.
        let total: f64 = pf.iter().map(|s| s.score).sum();
        assert!(total >= 12.0, "seed {seed}: found {total}");
    }
}

#[test]
fn phrase_finder_agrees_on_background_bigrams() {
    // High-frequency background words form accidental bigrams — a much
    // nastier case than planted phrases.
    let (store, index) = corpus(3, PlantSpec::default());
    for pair in [["w0", "w1"], ["w1", "w0"], ["w0", "w0"], ["w2", "w5"]] {
        let pf = sort_by_node(phrase_finder(&store, &index, &[pair[0], pair[1]]));
        let c3 = sort_by_node(comp3(&store, &index, &[pair[0], pair[1]]));
        assert!(
            results_equal(&pf, &c3, 1e-12),
            "{pair:?}\npf={pf:?}\nc3={c3:?}"
        );
    }
}

#[test]
fn stack_pick_agrees_with_reference_pick() {
    use tix_core::ops::{FractionPick, PickCriterion};
    use tix_core::pattern::PatternNodeId;
    use tix_core::ScoredTree;

    for seed in 0..6u64 {
        let plants = PlantSpec::default()
            .with_term("alpha", 40)
            .with_term("beta", 15);
        let (store, index) = corpus(seed, plants);
        // Produce a realistic scored stream via TermJoin.
        let scorer = SimpleScorer::new(vec![1.0, 0.7]);
        let scored = sort_by_node(TermJoin::new(&store, &index, &["alpha", "beta"], &scorer).run());

        // Stack-based access method.
        let picked_fast = pick_stream(&store, &scored, &PickParams::paper());

        // Reference: build a ScoredTree and use the algebra's picked set.
        let var = PatternNodeId(4);
        let tree = ScoredTree::from_stored(
            &store,
            scored
                .iter()
                .map(|s| (s.node, Some(s.score), vec![var]))
                .collect(),
        );
        let criterion = FractionPick::paper();
        let picked_ref = tix_core::ops::picked_entries(&tree, var, &criterion);
        let expected: Vec<ScoredNode> = tree
            .entries()
            .iter()
            .zip(&picked_ref)
            .filter(|(_, &p)| p)
            .map(|(e, _)| ScoredNode::new(e.source.stored().unwrap(), e.score.unwrap()))
            .collect();
        assert!(
            results_equal(&picked_fast, &expected, 1e-12),
            "seed {seed}\nfast={picked_fast:?}\nref={expected:?}"
        );
        let _ = &criterion as &dyn PickCriterion;
    }
}
