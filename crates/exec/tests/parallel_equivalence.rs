//! The parallel access methods must be *bit-identical* to their sequential
//! counterparts — same nodes, same order, same `f64` scores compared with
//! `==`, no epsilon — at every thread count, including thread counts far
//! exceeding the document count.

use tix_corpus::{CorpusSpec, Generator, PlantSpec};
use tix_exec::parallel::{phrase_finder_parallel, pick_stream_parallel, term_join_parallel};
use tix_exec::phrase::phrase_finder;
use tix_exec::pick::{pick_stream, PickParams};
use tix_exec::scored::sort_by_node;
use tix_exec::{ChildCountMode, ComplexScorer, SimpleScorer, TermJoin};
use tix_index::InvertedIndex;
use tix_store::Store;

const THREADS: [usize; 3] = [1, 2, 8];

fn empty_store() -> Store {
    Store::new()
}

fn single_doc_store() -> Store {
    let mut store = Store::new();
    store
        .load_str(
            "one.xml",
            "<a><s><p>alpha beta alpha</p><p>beta gamma</p></s>\
             <s><p>alpha beta</p></s></a>",
        )
        .unwrap();
    store
}

fn many_doc_store() -> Store {
    let spec = CorpusSpec {
        articles: 9,
        ..CorpusSpec::tiny()
    };
    let plants = PlantSpec::default()
        .with_term("alpha", 12)
        .with_term("beta", 8)
        .with_phrase("alpha", "beta", 5, 4);
    let mut store = Store::new();
    Generator::new(spec, plants)
        .unwrap()
        .load_into(&mut store)
        .unwrap();
    store
}

fn fixtures() -> Vec<(&'static str, Store)> {
    vec![
        ("empty", empty_store()),
        ("single-doc", single_doc_store()),
        ("many-doc", many_doc_store()),
    ]
}

#[test]
fn term_join_simple_scorer_matches_sequential() {
    for (name, store) in fixtures() {
        let index = InvertedIndex::build(&store);
        let scorer = SimpleScorer::paper();
        let expected = TermJoin::new(&store, &index, &["alpha", "beta"], &scorer).run();
        for threads in THREADS {
            let got = term_join_parallel(&store, &index, &["alpha", "beta"], &scorer, threads);
            assert_eq!(got, expected, "{name} at {threads} threads");
        }
    }
}

#[test]
fn term_join_complex_scorer_matches_sequential_both_modes() {
    for (name, store) in fixtures() {
        let index = InvertedIndex::build(&store);
        for mode in [ChildCountMode::Navigate, ChildCountMode::Index] {
            let scorer = ComplexScorer::uniform(mode);
            let expected = TermJoin::new(&store, &index, &["alpha", "beta"], &scorer).run();
            for threads in THREADS {
                let got = term_join_parallel(&store, &index, &["alpha", "beta"], &scorer, threads);
                assert_eq!(got, expected, "{name} {mode:?} at {threads} threads");
            }
        }
    }
}

#[test]
fn term_join_with_absent_term_matches_sequential() {
    for (name, store) in fixtures() {
        let index = InvertedIndex::build(&store);
        let scorer = SimpleScorer::uniform();
        let terms = ["alpha", "never-indexed"];
        let expected = TermJoin::new(&store, &index, &terms, &scorer).run();
        for threads in THREADS {
            let got = term_join_parallel(&store, &index, &terms, &scorer, threads);
            assert_eq!(got, expected, "{name} at {threads} threads");
        }
    }
}

#[test]
fn phrase_finder_matches_sequential() {
    for (name, store) in fixtures() {
        let index = InvertedIndex::build(&store);
        let expected = phrase_finder(&store, &index, &["alpha", "beta"]);
        for threads in THREADS {
            let got = phrase_finder_parallel(&store, &index, &["alpha", "beta"], threads);
            assert_eq!(got, expected, "{name} at {threads} threads");
        }
    }
}

#[test]
fn pick_stream_matches_sequential() {
    for (name, store) in fixtures() {
        let index = InvertedIndex::build(&store);
        let scorer = SimpleScorer::uniform();
        let scored = sort_by_node(TermJoin::new(&store, &index, &["alpha", "beta"], &scorer).run());
        for params in [
            PickParams::paper(),
            PickParams {
                relevance_threshold: 2.0,
                fraction: 0.3,
            },
        ] {
            let expected = pick_stream(&store, &scored, &params);
            for threads in THREADS {
                let got = pick_stream_parallel(&store, &scored, &params, threads);
                assert_eq!(got, expected, "{name} {params:?} at {threads} threads");
            }
        }
    }
}

#[test]
fn thread_count_beyond_doc_count_is_fine() {
    let store = single_doc_store();
    let index = InvertedIndex::build(&store);
    let scorer = SimpleScorer::uniform();
    let expected = TermJoin::new(&store, &index, &["alpha"], &scorer).run();
    let got = term_join_parallel(&store, &index, &["alpha"], &scorer, 64);
    assert_eq!(got, expected);
}
