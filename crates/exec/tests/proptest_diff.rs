//! Property-based differential tests on *arbitrary* XML shapes (deep
//! nesting, mixed content, repeated terms in one text node) — corpus-shaped
//! trees are regular; these are not.

use proptest::prelude::*;
use tix_exec::composite::{comp1, comp2};
use tix_exec::meet::generalized_meet;
use tix_exec::phrase::{comp3, phrase_finder};
use tix_exec::pick::{pick_stream, PickParams};
use tix_exec::scored::{results_equal, sort_by_node, ScoredNode};
use tix_exec::termjoin::{ChildCountMode, ComplexScorer, SimpleScorer, TermJoin};
use tix_index::InvertedIndex;
use tix_store::Store;

/// Tiny term alphabet so collisions and repetitions are frequent.
fn text_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![Just("qq"), Just("zz"), Just("kk"), Just("pad")],
        1..6,
    )
    .prop_map(|words| words.join(" "))
}

fn subtree(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        text_strategy().boxed()
    } else {
        prop::collection::vec(
            prop_oneof![
                text_strategy(),
                ("[a-d]", subtree(depth - 1))
                    .prop_map(|(tag, inner)| format!("<{tag}>{inner}</{tag}>")),
            ],
            0..4,
        )
        .prop_map(|parts| parts.concat())
        .boxed()
    }
}

fn doc_strategy() -> impl Strategy<Value = String> {
    subtree(4).prop_map(|inner| format!("<root>{inner}</root>"))
}

fn load(xmls: &[String]) -> (Store, InvertedIndex) {
    let mut store = Store::new();
    for (i, xml) in xmls.iter().enumerate() {
        store.load_str(&format!("d{i}.xml"), xml).unwrap();
    }
    let index = InvertedIndex::build(&store);
    (store, index)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_termjoin_methods_agree_simple(docs in prop::collection::vec(doc_strategy(), 1..3)) {
        let (store, index) = load(&docs);
        let scorer = SimpleScorer::new(vec![0.8, 0.6]);
        let terms = ["qq", "zz"];
        let tj = sort_by_node(TermJoin::new(&store, &index, &terms, &scorer).run());
        let c1 = sort_by_node(comp1(&store, &index, &terms, &scorer));
        let c2 = sort_by_node(comp2(&store, &index, &terms, &scorer));
        let gm = sort_by_node(generalized_meet(&store, &index, &terms, &scorer));
        prop_assert!(results_equal(&tj, &c1, 1e-9), "Comp1\ntj={tj:?}\nc1={c1:?}");
        prop_assert!(results_equal(&tj, &c2, 1e-9), "Comp2\ntj={tj:?}\nc2={c2:?}");
        prop_assert!(results_equal(&tj, &gm, 1e-9), "Meet\ntj={tj:?}\ngm={gm:?}");
    }

    #[test]
    fn all_termjoin_methods_agree_complex(docs in prop::collection::vec(doc_strategy(), 1..3)) {
        let (store, index) = load(&docs);
        let terms = ["qq", "zz", "kk"];
        for mode in [ChildCountMode::Index, ChildCountMode::Navigate] {
            let scorer = ComplexScorer::uniform(mode);
            let tj = sort_by_node(TermJoin::new(&store, &index, &terms, &scorer).run());
            let c1 = sort_by_node(comp1(&store, &index, &terms, &scorer));
            let c2 = sort_by_node(comp2(&store, &index, &terms, &scorer));
            let gm = sort_by_node(generalized_meet(&store, &index, &terms, &scorer));
            prop_assert!(results_equal(&tj, &c1, 1e-9), "{mode:?}\ntj={tj:?}\nc1={c1:?}");
            prop_assert!(results_equal(&tj, &c2, 1e-9), "{mode:?}\ntj={tj:?}\nc2={c2:?}");
            prop_assert!(results_equal(&tj, &gm, 1e-9), "{mode:?}\ntj={tj:?}\ngm={gm:?}");
        }
    }

    #[test]
    fn phrase_methods_agree(docs in prop::collection::vec(doc_strategy(), 1..3)) {
        let (store, index) = load(&docs);
        for pair in [["qq", "zz"], ["qq", "qq"], ["zz", "kk"]] {
            let pf = sort_by_node(phrase_finder(&store, &index, pair.as_ref()));
            let c3 = sort_by_node(comp3(&store, &index, pair.as_ref()));
            prop_assert!(results_equal(&pf, &c3, 1e-12), "{pair:?}\npf={pf:?}\nc3={c3:?}");
        }
    }

    #[test]
    fn pick_stream_agrees_with_reference(
        docs in prop::collection::vec(doc_strategy(), 1..3),
        threshold_tenths in 0u32..40,
        fraction_tenths in 0u32..10,
    ) {
        use tix_core::ops::{picked_entries, FractionPick};
        use tix_core::pattern::PatternNodeId;
        use tix_core::ScoredTree;

        let (store, index) = load(&docs);
        // A realistic document-ordered scored stream via TermJoin.
        let scorer = SimpleScorer::new(vec![1.0, 0.7]);
        let scored =
            sort_by_node(TermJoin::new(&store, &index, &["qq", "zz"], &scorer).run());

        let params = PickParams {
            relevance_threshold: threshold_tenths as f64 / 10.0,
            fraction: fraction_tenths as f64 / 10.0,
        };
        let picked_fast = pick_stream(&store, &scored, &params);

        // Reference: the algebra's picked set over an explicit ScoredTree.
        let var = PatternNodeId(4);
        let tree = ScoredTree::from_stored(
            &store,
            scored.iter().map(|s| (s.node, Some(s.score), vec![var])).collect(),
        );
        let criterion = FractionPick {
            relevance_threshold: params.relevance_threshold,
            fraction: params.fraction,
        };
        let picked_ref = picked_entries(&tree, var, &criterion);
        let expected: Vec<ScoredNode> = tree
            .entries()
            .iter()
            .zip(&picked_ref)
            .filter(|(_, &p)| p)
            .map(|(e, _)| ScoredNode::new(e.source.stored().unwrap(), e.score.unwrap()))
            .collect();
        prop_assert!(
            results_equal(&picked_fast, &expected, 1e-12),
            "{params:?}\nfast={picked_fast:?}\nref={expected:?}"
        );
    }

    #[test]
    fn termjoin_scores_match_subtree_counts(docs in prop::collection::vec(doc_strategy(), 1..3)) {
        let (store, index) = load(&docs);
        let scorer = SimpleScorer::uniform();
        let out = TermJoin::new(&store, &index, &["qq"], &scorer).run();
        for s in &out {
            let count = index.count_in_subtree(&store, "qq", s.node) as f64;
            prop_assert!((s.score - count).abs() < 1e-9, "{} vs {}", s.score, count);
        }
    }
}
