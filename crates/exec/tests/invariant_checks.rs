//! The invariant layer's debug/release contract, exercised end to end:
//! deliberately corrupted inputs must make the checkers panic exactly when
//! checking is compiled in (`debug_assertions` or the `check-invariants`
//! feature) and cost nothing when it is not.
//!
//! Every assertion here is phrased as
//! `panicked == tix_invariants::ACTIVE`, so this file passes — and means
//! something different — under `cargo test`, `cargo test --release`, and
//! `cargo test --release --features check-invariants`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use tix_exec::modify::{scored_union, Combine};
use tix_exec::pick::{pick_stream, PickParams};
use tix_exec::scored::ScoredNode;
use tix_store::{DocId, NodeIdx, NodeRef, Store};

fn sn(doc: u32, node: u32, score: f64) -> ScoredNode {
    ScoredNode::new(NodeRef::new(DocId(doc), NodeIdx(node)), score)
}

/// Run `f`, swallow any panic, and report whether one happened.
fn panics(f: impl FnOnce()) -> bool {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // keep test output clean
    let result = catch_unwind(AssertUnwindSafe(f)).is_err();
    std::panic::set_hook(prev);
    result
}

#[test]
fn corrupt_pick_stream_trips_the_checker_iff_active() {
    let mut store = Store::new();
    store.load_str("t.xml", "<a><b>x</b><c>y</c></a>").unwrap();
    // Out of document order: node 3 before node 1.
    let corrupted = vec![sn(0, 3, 1.0), sn(0, 1, 1.0)];
    let tripped = panics(|| {
        let _ = pick_stream(&store, &corrupted, &PickParams::paper());
    });
    assert_eq!(tripped, tix_invariants::ACTIVE);
}

#[test]
fn corrupt_scored_union_input_trips_the_checker_iff_active() {
    let sorted = vec![sn(0, 1, 1.0), sn(0, 2, 1.0)];
    let duplicated = vec![sn(0, 2, 1.0), sn(0, 2, 2.0)];
    let tripped = panics(|| {
        let _ = scored_union(&sorted, &duplicated, 1.0, 1.0, Combine::WeightedSum);
    });
    assert_eq!(tripped, tix_invariants::ACTIVE);
}

#[test]
fn corrupt_posting_list_trips_the_checker_iff_active() {
    // A posting list whose second entry went backwards — the shape a
    // corrupted index would hand the merge joins.
    let postings = [(0u32, 5u32, 0u32), (0, 2, 0)];
    let tripped = panics(|| {
        tix_invariants::check! {
            tix_invariants::assert_postings_sorted(postings.len(), |i| postings[i]);
        }
    });
    assert_eq!(tripped, tix_invariants::ACTIVE);
}

#[test]
fn corrupt_region_pair_trips_the_checker_iff_active() {
    // Two sibling regions that overlap without nesting — laminar
    // containment (Sec. 2's region algebra) forbids exactly this.
    let regions = [
        tix_invariants::Region {
            end: 3,
            parent: tix_invariants::NO_PARENT,
            level: 0,
        },
        tix_invariants::Region {
            end: 4, // escapes its parent's [0, 3] region
            parent: 0,
            level: 1,
        },
    ];
    let tripped = panics(|| {
        tix_invariants::check! {
            tix_invariants::assert_regions_well_formed(regions.len() as u32, |i| {
                regions[i as usize]
            });
        }
    });
    assert_eq!(tripped, tix_invariants::ACTIVE);
}

#[test]
fn corrupt_pick_stack_trips_the_checker_iff_active() {
    // A "stack" whose second frame is not contained in its first — the
    // ancestor-chain discipline of TermJoin (Fig. 8/9) and Pick (Fig. 12).
    let frames = [(0u32, 3u32), (5, 9)];
    let tripped = panics(|| {
        tix_invariants::check! {
            tix_invariants::assert_stack_ancestor_chain(frames.len(), |anc, desc| {
                let (a_start, a_end) = frames[anc];
                let (d_start, d_end) = frames[desc];
                a_start <= d_start && d_end <= a_end
            });
        }
    });
    assert_eq!(tripped, tix_invariants::ACTIVE);
}

#[test]
fn sub_threshold_score_trips_the_checker_iff_active() {
    let tripped = panics(|| {
        tix_invariants::check! {
            // §4.2: 0.4 does not clear the 0.5 value condition.
            tix_invariants::assert_scores_above([1.0, 0.4], 0.5);
        }
    });
    assert_eq!(tripped, tix_invariants::ACTIVE);
}

#[test]
// The initializer is dead exactly when the check! body runs — that
// asymmetry is the behavior under test.
#[allow(unused_assignments)]
fn checks_are_compiled_out_in_plain_release() {
    // `ACTIVE` is the single source of truth the assertions above compare
    // against; in a plain release build it must be false and the `check!`
    // bodies must not run at all.
    let mut ran = false;
    tix_invariants::check! {
        ran = true;
    }
    let active = tix_invariants::ACTIVE;
    assert_eq!(ran, active);
    if !cfg!(debug_assertions) && !cfg!(feature = "check-invariants") {
        assert!(!active);
        assert!(!ran);
    }
    let _ = &mut ran;
}
