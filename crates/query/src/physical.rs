//! Costed physical plans: which access method evaluates a
//! [`LogicalPlan`], and whether `Threshold … stop after k` is pushed down
//! into it.
//!
//! ## The cost model
//!
//! Costs are **abstract work units** (posting touches, node visits,
//! comparison steps), computed entirely in saturating `u64` arithmetic —
//! no floats, so plan choice is exactly reproducible across platforms and
//! can never depend on rounding. Fractional statistics (average depth d̄,
//! average fan-out c̄) arrive in *milli* units from [`crate::stats`].
//!
//! With `t` query terms, `F` total postings, `E` elements, `D` documents,
//! and `A = min(E, F·d̄ + t)` the bound on distinct scored ancestors
//! (every posting contributes its ancestor chain, capped by the element
//! count):
//!
//! | plan | cost | why |
//! |------|------|-----|
//! | TermJoin | `F·t + 2A` | one merge pass over `F` postings with a `t`-wide counter stack, then sort + Pick over `A` outputs |
//! | Enhanced TermJoin | TermJoin `+ 2A` | one child-count index probe (≈ two node visits) per scored node |
//! | TermJoin (complex, navigate) | TermJoin `+ A + A·c̄` | child counting by navigation visits each scored node's children |
//! | Comp1 | `4·x + x·log₂x + 2A`, `x = F·(d̄+1)` | materialize every (occurrence, ancestor) record, sort it, group, union |
//! | Comp2 | `t·E + F + 2A` | per term, a structural join scans the full element list |
//! | Generalized Meet | `3·x + 2A` | ancestor expansion into a hash of groups (no sort) |
//! | PhraseFinder | `F·t + F` | posting merge with in-intersection adjacency checks |
//! | Comp3 | `F·t + 3F` | intersect, materialize, then re-verify offsets |
//! | +pushdown | `base·frac + k·log₂k + 32` | scans `frac ≈ (k+1)/docs(∪terms)` of the postings before the §4.2 bound closes; `+32` per-document bound checks |
//!
//! The pushdown fraction is a deliberately *optimistic* estimate of the
//! WAND-style early exit (it assumes the top-k documents arrive early in
//! document order); the `+32` constant and the `k·log₂k` accumulator term
//! keep it from winning on corpora too small for early exit to pay. Since
//! **every candidate returns byte-identical results** (the plan-
//! equivalence differential suite enforces this), a mis-estimate costs
//! only time, never correctness.

use crate::logical::{LogicalPlan, Scoring, TermSearch};
use crate::stats::PlanInputs;

/// Physical access methods (Sec. 5 and the Sec. 6 baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMethod {
    /// Stack-based posting merge (Fig. 11), child counts by navigation.
    TermJoin,
    /// TermJoin with the store's child-count index (complex scoring).
    EnhancedTermJoin,
    /// Standard-operator composition: expand → sort → group → union.
    Comp1,
    /// Structural joins of the full element list against each term.
    Comp2,
    /// Generalized Meet (hash-grouped ancestor expansion).
    GeneralizedMeet,
    /// In-intersection phrase adjacency verification.
    PhraseFinder,
    /// Intersect-then-filter phrase baseline.
    Comp3,
}

impl AccessMethod {
    /// Stable label used by EXPLAIN and the plan-override CLI/API.
    pub fn label(self) -> &'static str {
        match self {
            AccessMethod::TermJoin => "term-join",
            AccessMethod::EnhancedTermJoin => "enhanced-term-join",
            AccessMethod::Comp1 => "comp1",
            AccessMethod::Comp2 => "comp2",
            AccessMethod::GeneralizedMeet => "generalized-meet",
            AccessMethod::PhraseFinder => "phrase-finder",
            AccessMethod::Comp3 => "comp3",
        }
    }
}

/// An executable physical plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysicalPlan {
    /// The access method.
    pub access: AccessMethod,
    /// Is `Threshold … stop after k` pushed into the scan (WAND-style
    /// early exit)? Only meaningful for the TermJoin family.
    pub pushdown: bool,
}

impl PhysicalPlan {
    /// A full-scan plan for `access`.
    pub fn scan(access: AccessMethod) -> Self {
        PhysicalPlan {
            access,
            pushdown: false,
        }
    }

    /// A pushdown plan for `access`.
    pub fn pushed(access: AccessMethod) -> Self {
        PhysicalPlan {
            access,
            pushdown: true,
        }
    }

    /// Stable label used by EXPLAIN (`term-join+pushdown`).
    pub fn label(&self) -> String {
        if self.pushdown {
            format!("{}+pushdown", self.access.label())
        } else {
            self.access.label().to_string()
        }
    }
}

/// A candidate plan with its estimated cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostedPlan {
    /// The plan.
    pub plan: PhysicalPlan,
    /// Estimated work units (saturating; `u64::MAX` means "never pick
    /// this unless it is the only option").
    pub cost: u64,
}

/// The planner's decision: the chosen plan plus every candidate costed,
/// in canonical candidate order (EXPLAIN prints this list verbatim).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanChoice {
    /// The minimum-cost candidate (first wins ties).
    pub chosen: CostedPlan,
    /// All candidates, in canonical order.
    pub candidates: Vec<CostedPlan>,
}

/// `(value · milli) / 1000` without overflow surprises.
fn mul_milli(value: u64, milli: u64) -> u64 {
    // Split to keep value·milli out of overflow range for realistic
    // inputs; saturate beyond that.
    value
        .checked_mul(milli)
        .map(|p| p / 1000)
        .unwrap_or_else(|| (value / 1000).saturating_mul(milli))
}

/// `n·log₂(n)` (sort cost), saturating.
fn sort_cost(n: u64) -> u64 {
    n.saturating_mul(u64::from(n.max(2).ilog2()))
}

/// Cost terms shared by every access method for one term search.
struct CostContext {
    /// Number of query terms.
    t: u64,
    /// Total postings across the query terms.
    f: u64,
    /// Elements in the corpus.
    e: u64,
    /// Distinct-ancestor bound `A = min(E, F·d̄ + t)`.
    a: u64,
    /// Materialized (occurrence, ancestor-or-self) records
    /// `x = F·(d̄+1)`.
    x: u64,
    /// Average element fan-out, milli.
    c_milli: u64,
    /// `min(D, Σ df)` — documents that can contain any query term.
    docs_union: u64,
    /// All query terms carry v3 block-max metadata, enabling the
    /// pushdown runner's per-document skip discipline.
    block_max: bool,
}

impl CostContext {
    fn new(search_terms: usize, inputs: &PlanInputs) -> Self {
        let t = u64::try_from(search_terms).unwrap_or(u64::MAX);
        let f = inputs.total_postings();
        let d_milli = inputs.corpus.avg_depth_milli;
        let a = mul_milli(f, d_milli)
            .saturating_add(t)
            .min(inputs.corpus.elements.max(1));
        CostContext {
            t,
            f,
            e: inputs.corpus.elements,
            a,
            x: mul_milli(f, d_milli.saturating_add(1000)),
            c_milli: inputs.corpus.avg_children_milli,
            docs_union: inputs.docs_union_bound(),
            block_max: inputs.block_max_available(),
        }
    }

    fn term_join(&self, scoring: &Scoring, enhanced: bool) -> u64 {
        let merge = self.f.saturating_mul(self.t).saturating_add(
            self.a.saturating_mul(2), // document-order sort + Pick pass
        );
        match scoring {
            // A child-count probe costs about two navigation visits, so
            // the index wins exactly when the average fan-out exceeds 1.
            Scoring::Complex if enhanced => merge.saturating_add(self.a.saturating_mul(2)),
            Scoring::Complex => merge
                .saturating_add(self.a)
                .saturating_add(mul_milli(self.a, self.c_milli)),
            _ => merge,
        }
    }

    fn comp1(&self) -> u64 {
        self.x
            .saturating_mul(4)
            .saturating_add(sort_cost(self.x))
            .saturating_add(self.a.saturating_mul(2))
    }

    fn comp2(&self) -> u64 {
        self.t
            .saturating_mul(self.e)
            .saturating_add(self.f)
            .saturating_add(self.a.saturating_mul(2))
    }

    fn meet(&self) -> u64 {
        self.x
            .saturating_mul(3)
            .saturating_add(self.a.saturating_mul(2))
    }

    /// The early-exit discount for pushing top-k into `base`.
    fn pushdown(&self, base: u64, k: usize) -> u64 {
        let k = u64::try_from(k).unwrap_or(u64::MAX);
        // Expected scanned fraction, milli: the exit needs at least k+1
        // result-bearing documents before the bound can close.
        let frac_milli = k
            .saturating_add(1)
            .saturating_mul(1000)
            .checked_div(self.docs_union.max(1))
            .unwrap_or(1000)
            .min(1000);
        let scan = mul_milli(base, frac_milli);
        // v3 block-max metadata lets the runner skip non-contributing
        // documents unjoined and close the §4.2 bound on a tightened
        // suffix, so roughly halve the expected scan work. Indexes
        // without metadata keep the PR 6 formula exactly.
        let scan = if self.block_max { scan / 2 } else { scan };
        scan.saturating_add(sort_cost(k)).saturating_add(32)
    }
}

/// Cost every applicable candidate for a term search, canonical order.
fn term_search_candidates(search: &TermSearch, inputs: &PlanInputs) -> Vec<CostedPlan> {
    let ctx = CostContext::new(search.terms.len(), inputs);
    let complex = matches!(search.scoring, Scoring::Complex);
    let mut out = Vec::new();
    let mut push = |plan: PhysicalPlan, cost: u64| out.push(CostedPlan { plan, cost });

    if complex {
        let enhanced = ctx.term_join(&search.scoring, true);
        push(PhysicalPlan::scan(AccessMethod::EnhancedTermJoin), enhanced);
        push(
            PhysicalPlan::pushed(AccessMethod::EnhancedTermJoin),
            ctx.pushdown(enhanced, search.k),
        );
    }
    let term_join = ctx.term_join(&search.scoring, false);
    push(PhysicalPlan::scan(AccessMethod::TermJoin), term_join);
    push(
        PhysicalPlan::pushed(AccessMethod::TermJoin),
        ctx.pushdown(term_join, search.k),
    );
    push(
        PhysicalPlan::scan(AccessMethod::GeneralizedMeet),
        ctx.meet(),
    );
    push(PhysicalPlan::scan(AccessMethod::Comp1), ctx.comp1());
    push(PhysicalPlan::scan(AccessMethod::Comp2), ctx.comp2());
    out
}

/// Cost every applicable candidate for a phrase search.
fn phrase_candidates(terms: usize, inputs: &PlanInputs) -> Vec<CostedPlan> {
    let ctx = CostContext::new(terms, inputs);
    let merge = ctx.f.saturating_mul(ctx.t);
    vec![
        CostedPlan {
            plan: PhysicalPlan::scan(AccessMethod::PhraseFinder),
            cost: merge.saturating_add(ctx.f),
        },
        CostedPlan {
            plan: PhysicalPlan::scan(AccessMethod::Comp3),
            cost: merge.saturating_add(ctx.f.saturating_mul(3)),
        },
    ]
}

/// Every candidate plan for `logical`, costed, in canonical order.
pub fn candidates(logical: &LogicalPlan, inputs: &PlanInputs) -> Vec<CostedPlan> {
    match logical {
        LogicalPlan::TermSearch(search) => term_search_candidates(search, inputs),
        LogicalPlan::Phrase(phrase) => phrase_candidates(phrase.terms.len(), inputs),
    }
}

/// Choose the minimum-cost plan (earlier candidate wins ties, so the
/// choice is deterministic and stable under candidate-list extension).
pub fn choose(logical: &LogicalPlan, inputs: &PlanInputs) -> PlanChoice {
    let candidates = candidates(logical, inputs);
    let chosen = candidates
        .iter()
        .copied()
        .reduce(|best, c| if c.cost < best.cost { c } else { best })
        .unwrap_or(CostedPlan {
            plan: PhysicalPlan::scan(AccessMethod::TermJoin),
            cost: 0,
        });
    PlanChoice { chosen, candidates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{CorpusStats, TermStats};

    /// A fabricated corpus shape (the knobs plan-flip tests turn).
    fn corpus(documents: u64, elements: u64, avg_depth_milli: u64) -> CorpusStats {
        CorpusStats {
            documents,
            elements,
            total_nodes: elements.saturating_mul(2),
            distinct_tags: 8,
            max_depth: 6,
            avg_depth_milli,
            avg_children_milli: 2000,
            total_tokens: 1_000_000,
        }
    }

    fn term(term: &str, cf: u64, df: u64) -> TermStats {
        TermStats {
            term: term.to_string(),
            collection_frequency: cf,
            document_frequency: df,
            node_frequency: cf,
            max_doc_count: None,
        }
    }

    fn search(terms: &[&str], k: usize) -> TermSearch {
        TermSearch {
            terms: terms.iter().map(|t| (*t).to_string()).collect(),
            scoring: Scoring::SimpleUniform,
            pick: None,
            k,
            min_score: None,
        }
    }

    #[test]
    fn typical_corpus_chooses_term_join() {
        let inputs = PlanInputs {
            corpus: corpus(1000, 100_000, 3000),
            terms: vec![term("rust", 500, 300), term("xml", 800, 400)],
        };
        let choice = choose(
            &LogicalPlan::TermSearch(search(&["rust", "xml"], usize::MAX)),
            &inputs,
        );
        assert_eq!(
            choice.chosen.plan,
            PhysicalPlan::scan(AccessMethod::TermJoin)
        );
        assert_eq!(choice.candidates.len(), 5);
    }

    #[test]
    fn small_k_over_many_documents_chooses_pushdown() {
        let inputs = PlanInputs {
            corpus: corpus(100_000, 10_000_000, 3000),
            terms: vec![term("rust", 400_000, 90_000)],
        };
        let choice = choose(&LogicalPlan::TermSearch(search(&["rust"], 10)), &inputs);
        assert_eq!(
            choice.chosen.plan,
            PhysicalPlan::pushed(AccessMethod::TermJoin)
        );
    }

    #[test]
    fn block_max_metadata_discounts_the_pushdown_candidate() {
        let base = PlanInputs {
            corpus: corpus(100_000, 10_000_000, 3000),
            terms: vec![term("rust", 400_000, 90_000)],
        };
        let mut v3 = base.clone();
        for t in &mut v3.terms {
            t.max_doc_count = Some(12);
        }
        assert!(!base.block_max_available());
        assert!(v3.block_max_available());
        // k large enough that the expected scanned fraction is non-zero
        // in milli units — the discount applies to the scan term only.
        let logical = LogicalPlan::TermSearch(search(&["rust"], 1000));
        let cost_of = |inputs: &PlanInputs| {
            choose(&logical, inputs)
                .candidates
                .iter()
                .find(|c| c.plan == PhysicalPlan::pushed(AccessMethod::TermJoin))
                .map(|c| c.cost)
                .unwrap()
        };
        let without = cost_of(&base);
        let with = cost_of(&v3);
        assert!(
            with < without,
            "block-max metadata must discount pushdown ({with} !< {without})"
        );
        // Non-pushdown candidates are unaffected by the metadata.
        let scans = |inputs: &PlanInputs| -> Vec<u64> {
            choose(&logical, inputs)
                .candidates
                .iter()
                .filter(|c| !c.plan.pushdown)
                .map(|c| c.cost)
                .collect()
        };
        assert_eq!(scans(&base), scans(&v3));
    }

    #[test]
    fn tiny_element_list_with_huge_postings_chooses_comp2() {
        // E ≪ F: scanning the element list once per term beats a posting
        // merge that touches every occurrence t times.
        let inputs = PlanInputs {
            corpus: CorpusStats {
                avg_depth_milli: 9000,
                ..corpus(10, 50, 9000)
            },
            terms: vec![term("a", 200_000, 10), term("b", 200_000, 10)],
        };
        let choice = choose(
            &LogicalPlan::TermSearch(search(&["a", "b"], usize::MAX)),
            &inputs,
        );
        assert_eq!(choice.chosen.plan, PhysicalPlan::scan(AccessMethod::Comp2));
    }

    #[test]
    fn complex_scoring_fans_out_between_navigate_and_index() {
        let mut inputs = PlanInputs {
            corpus: corpus(1000, 100_000, 3000),
            terms: vec![term("rust", 5000, 900)],
        };
        let mut s = search(&["rust"], usize::MAX);
        s.scoring = Scoring::Complex;
        let logical = LogicalPlan::TermSearch(s);
        // Bushy elements: the child-count index wins.
        inputs.corpus.avg_children_milli = 50_000;
        let bushy = choose(&logical, &inputs);
        assert_eq!(
            bushy.chosen.plan,
            PhysicalPlan::scan(AccessMethod::EnhancedTermJoin)
        );
        // Near-linear documents: navigation is as cheap as the probe, and
        // plain TermJoin avoids the index lookups... the Enhanced variant
        // stays ahead only while c̄ > 1.
        inputs.corpus.avg_children_milli = 500;
        let skinny = choose(&logical, &inputs);
        assert_eq!(
            skinny.chosen.plan,
            PhysicalPlan::scan(AccessMethod::TermJoin)
        );
    }

    #[test]
    fn unbounded_k_never_chooses_pushdown() {
        let inputs = PlanInputs {
            corpus: corpus(100_000, 10_000_000, 3000),
            terms: vec![term("rust", 400_000, 90_000)],
        };
        let choice = choose(
            &LogicalPlan::TermSearch(search(&["rust"], usize::MAX)),
            &inputs,
        );
        assert!(!choice.chosen.plan.pushdown);
        // The pushdown candidate is still listed (and still executable).
        assert!(choice.candidates.iter().any(|c| c.plan.pushdown));
    }

    #[test]
    fn phrase_chooses_phrase_finder_over_comp3() {
        let inputs = PlanInputs {
            corpus: corpus(1000, 100_000, 3000),
            terms: vec![term("search", 500, 300), term("engine", 200, 150)],
        };
        let logical = LogicalPlan::Phrase(crate::logical::PhraseSearch {
            terms: vec!["search".to_string(), "engine".to_string()],
            k: usize::MAX,
            min_score: None,
        });
        let choice = choose(&logical, &inputs);
        assert_eq!(
            choice.chosen.plan,
            PhysicalPlan::scan(AccessMethod::PhraseFinder)
        );
        assert_eq!(choice.candidates.len(), 2);
    }

    #[test]
    fn ties_resolve_to_the_earlier_candidate() {
        // An empty query costs every plan its constant floor; the first
        // candidate must win deterministically.
        let inputs = PlanInputs {
            corpus: corpus(1, 1, 0),
            terms: vec![],
        };
        let choice = choose(&LogicalPlan::TermSearch(search(&[], usize::MAX)), &inputs);
        assert_eq!(choice.chosen.plan, choice.candidates[0].plan);
    }

    #[test]
    fn costs_saturate_instead_of_overflowing() {
        let inputs = PlanInputs {
            corpus: CorpusStats {
                documents: u64::MAX,
                elements: u64::MAX,
                total_nodes: u64::MAX,
                distinct_tags: u64::MAX,
                max_depth: u64::MAX,
                avg_depth_milli: u64::MAX,
                avg_children_milli: u64::MAX,
                total_tokens: u64::MAX,
            },
            terms: vec![term("t", u64::MAX, u64::MAX)],
        };
        // The real assertion is that costing completes without the
        // overflow panic a debug build would raise on unchecked
        // arithmetic; the costs themselves pin saturation.
        let choice = choose(
            &LogicalPlan::TermSearch(search(&["t"], usize::MAX)),
            &inputs,
        );
        assert!(!choice.candidates.is_empty());
        assert!(choice.candidates.iter().any(|c| c.cost == u64::MAX));
    }
}
