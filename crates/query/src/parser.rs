//! Recursive-descent parser for the extended-XQuery dialect.

use std::fmt;

use crate::ast::*;
use crate::lexer::{Lexer, Token};

/// A parse failure with a human-readable description.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parse a query text into a [`Query`].
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let tokens = Lexer::tokenize(input).map_err(ParseError)?;
    Parser { tokens, pos: 0 }.query()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, what: &str) -> Result<T, ParseError> {
        Err(ParseError(format!(
            "{what}, found {}",
            self.peek()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "end of input".into())
        )))
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Punct(p)) if p == c => Ok(()),
            other => Err(ParseError(format!(
                "expected {c:?}, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn expect_keyword(&mut self, word: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case(word) => Ok(()),
            other => Err(ParseError(format!(
                "expected {word:?}, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn var(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Var(name)) => Ok(name),
            other => Err(ParseError(format!(
                "expected a $variable, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Str(s)) => Ok(s),
            other => Err(ParseError(format!(
                "expected a string literal, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        match self.next() {
            Some(Token::Num(n)) => Ok(n),
            other => Err(ParseError(format!(
                "expected a number, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn keyword_is(&self, word: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(w)) if w.eq_ignore_ascii_case(word))
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        let mut query = Query::default();
        loop {
            match self.peek() {
                None => break,
                Some(Token::Ident(word)) => {
                    let word = word.clone();
                    if word.eq_ignore_ascii_case("For") {
                        query.fors.push(self.for_clause()?);
                    } else if word.eq_ignore_ascii_case("Score") {
                        query.scores.push(self.score_clause()?);
                    } else if word.eq_ignore_ascii_case("Pick") {
                        query.picks.push(self.pick_clause()?);
                    } else if word.eq_ignore_ascii_case("Return") {
                        self.next();
                        query.ret = Some(self.var()?);
                    } else if word.eq_ignore_ascii_case("Sortby") {
                        self.next();
                        self.expect_punct('(')?;
                        self.expect_keyword("score")?;
                        self.expect_punct(')')?;
                        query.sortby_score = true;
                    } else if word.eq_ignore_ascii_case("Threshold") {
                        query.threshold = Some(self.threshold_clause()?);
                    } else {
                        return self.err("expected a clause keyword");
                    }
                }
                Some(_) => return self.err("expected a clause keyword"),
            }
        }
        if query.fors.is_empty() {
            return Err(ParseError("a query needs at least one For clause".into()));
        }
        Ok(query)
    }

    fn for_clause(&mut self) -> Result<ForClause, ParseError> {
        self.expect_keyword("For")?;
        let var = self.var()?;
        // `in` and `:=` are interchangeable binders in Fig. 10.
        match self.next() {
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case("in") => {}
            Some(Token::Assign) => {}
            other => {
                return Err(ParseError(format!(
                    "expected 'in' or ':=', found {}",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                )))
            }
        }
        let path = self.path_expr()?;
        Ok(ForClause { var, path })
    }

    fn path_expr(&mut self) -> Result<PathExpr, ParseError> {
        self.expect_keyword("document")?;
        self.expect_punct('(')?;
        let document = self.string()?;
        self.expect_punct(')')?;
        let mut steps = Vec::new();
        loop {
            match self.peek() {
                Some(Token::DoubleSlash) => {
                    self.next();
                    let tag = self.tag_name()?;
                    steps.push(Step::Descendant(tag));
                }
                Some(Token::Slash) => {
                    self.next();
                    if self.keyword_is("descendant-or-self") {
                        self.next();
                        match self.next() {
                            Some(Token::DoubleColon) => {}
                            _ => return self.err("expected '::' after descendant-or-self"),
                        }
                        self.expect_punct('*')?;
                        steps.push(Step::DescendantOrSelfAny);
                    } else {
                        let tag = self.tag_name()?;
                        steps.push(Step::Child(tag));
                    }
                }
                Some(Token::Punct('[')) => {
                    self.next();
                    steps.push(self.predicate_body()?);
                }
                _ => break,
            }
        }
        if steps.is_empty() {
            return self.err("a path needs at least one step after document(...)");
        }
        Ok(PathExpr { document, steps })
    }

    fn tag_name(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(tag)) => Ok(tag),
            other => Err(ParseError(format!(
                "expected a tag name, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    /// Parses `[/a/b/text() = "v"]` or `[@name = "v"]` after the opening
    /// `[`.
    fn predicate_body(&mut self) -> Result<Step, ParseError> {
        if self.peek() == Some(&Token::Punct('@')) {
            self.next();
            let name = self.tag_name()?;
            self.expect_punct('=')?;
            let equals = self.string()?;
            self.expect_punct(']')?;
            return Ok(Step::AttrPredicate { name, equals });
        }
        let mut path = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Slash) => {
                    self.next();
                    if self.keyword_is("text") {
                        self.next();
                        self.expect_punct('(')?;
                        self.expect_punct(')')?;
                        break;
                    }
                    path.push(self.tag_name()?);
                }
                _ => return self.err("expected '/' in predicate path"),
            }
        }
        self.expect_punct('=')?;
        let equals = self.string()?;
        self.expect_punct(']')?;
        if path.is_empty() {
            return self.err("predicate path needs at least one tag");
        }
        Ok(Step::Predicate { path, equals })
    }

    fn score_clause(&mut self) -> Result<ScoreClause, ParseError> {
        self.expect_keyword("Score")?;
        let target = self.var()?;
        self.expect_keyword("using")?;
        let func = self.tag_name()?;
        self.expect_punct('(')?;
        let clause = if func.eq_ignore_ascii_case("ScoreFoo") {
            let var = self.var()?;
            if var != target {
                return Err(ParseError(format!(
                    "ScoreFoo's first argument (${var}) must be the scored variable (${target})"
                )));
            }
            self.expect_punct(',')?;
            let primary = self.phrase_set()?;
            self.expect_punct(',')?;
            let secondary = self.phrase_set()?;
            ScoreClause::Foo {
                var: target,
                primary,
                secondary,
            }
        } else if func.eq_ignore_ascii_case("ScoreSim") {
            let left_var = self.var()?;
            match self.next() {
                Some(Token::Slash) => {}
                _ => return self.err("expected '/' after ScoreSim's first variable"),
            }
            let left_child = self.tag_name()?;
            self.expect_punct(',')?;
            let right_var = self.var()?;
            match self.next() {
                Some(Token::Slash) => {}
                _ => return self.err("expected '/' after ScoreSim's second variable"),
            }
            let right_child = self.tag_name()?;
            ScoreClause::Sim {
                out: target,
                left_var,
                left_child,
                right_var,
                right_child,
            }
        } else if func.eq_ignore_ascii_case("ScoreBar") {
            let join = self.var()?;
            self.expect_punct(',')?;
            let scored = self.var()?;
            ScoreClause::Bar {
                out: target,
                join,
                scored,
            }
        } else {
            return Err(ParseError(format!(
                "unknown scoring function {func:?} (expected ScoreFoo, ScoreSim, or ScoreBar)"
            )));
        };
        self.expect_punct(')')?;
        Ok(clause)
    }

    fn phrase_set(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect_punct('{')?;
        let mut phrases = Vec::new();
        if self.peek() != Some(&Token::Punct('}')) {
            loop {
                phrases.push(self.string()?);
                match self.peek() {
                    Some(Token::Punct(',')) => {
                        self.next();
                    }
                    _ => break,
                }
            }
        }
        self.expect_punct('}')?;
        Ok(phrases)
    }

    fn pick_clause(&mut self) -> Result<PickClause, ParseError> {
        self.expect_keyword("Pick")?;
        let target = self.var()?;
        self.expect_keyword("using")?;
        self.expect_keyword("PickFoo")?;
        self.expect_punct('(')?;
        let var = self.var()?;
        if var != target {
            return Err(ParseError(format!(
                "PickFoo's argument (${var}) must be the picked variable (${target})"
            )));
        }
        let (mut threshold, mut fraction) = (0.8, 0.5);
        if self.peek() == Some(&Token::Punct(',')) {
            self.next();
            threshold = self.number()?;
            self.expect_punct(',')?;
            fraction = self.number()?;
        }
        self.expect_punct(')')?;
        Ok(PickClause {
            var: target,
            threshold,
            fraction,
        })
    }

    fn threshold_clause(&mut self) -> Result<ThresholdClause, ParseError> {
        self.expect_keyword("Threshold")?;
        let var = self.var()?;
        match self.next() {
            Some(Token::Slash) => {}
            _ => return self.err("expected '/@score' after Threshold variable"),
        }
        self.expect_punct('@')?;
        self.expect_keyword("score")?;
        self.expect_punct('>')?;
        let min_score = self.number()?;
        let stop_after = if self.keyword_is("stop") {
            self.next();
            self.expect_keyword("after")?;
            Some(self.number()? as usize)
        } else {
            None
        };
        Ok(ThresholdClause {
            var,
            min_score,
            stop_after,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_query1() {
        let q = parse(
            r#"
            For $a in document("articles.xml")//article/descendant-or-self::*
            Score $a using ScoreFoo($a, {"search engine"}, {"internet", "information retrieval"})
            Pick $a using PickFoo($a)
            Return $a
            Sortby(score)
            Threshold $a/@score > 4 stop after 5
            "#,
        )
        .unwrap();
        assert_eq!(q.fors.len(), 1);
        assert_eq!(q.fors[0].var, "a");
        assert_eq!(
            q.fors[0].path.steps,
            vec![
                Step::Descendant("article".into()),
                Step::DescendantOrSelfAny
            ]
        );
        assert_eq!(q.scores.len(), 1);
        match &q.scores[0] {
            ScoreClause::Foo {
                primary, secondary, ..
            } => {
                assert_eq!(primary, &["search engine"]);
                assert_eq!(secondary, &["internet", "information retrieval"]);
            }
            other => panic!("unexpected score clause {other:?}"),
        }
        assert_eq!(q.picks.len(), 1);
        assert!(q.sortby_score);
        let t = q.threshold.unwrap();
        assert_eq!(t.min_score, 4.0);
        assert_eq!(t.stop_after, Some(5));
    }

    #[test]
    fn parse_query2_predicate() {
        let q = parse(
            r#"
            For $a := document("articles.xml")//article[/author/sname/text()="Doe"]/descendant-or-self::*
            Score $a using ScoreFoo($a, {"search engine"}, {})
            "#,
        )
        .unwrap();
        assert_eq!(
            q.fors[0].path.steps,
            vec![
                Step::Descendant("article".into()),
                Step::Predicate {
                    path: vec!["author".into(), "sname".into()],
                    equals: "Doe".into()
                },
                Step::DescendantOrSelfAny,
            ]
        );
    }

    #[test]
    fn parse_join_query() {
        let q = parse(
            r#"
            For $a in document("articles.xml")//article
            For $b in document("reviews.xml")//review
            Score $j using ScoreSim($a/article-title, $b/title)
            Threshold $j/@score > 1
            "#,
        )
        .unwrap();
        assert_eq!(q.fors.len(), 2);
        match &q.scores[0] {
            ScoreClause::Sim {
                out,
                left_var,
                left_child,
                right_var,
                right_child,
            } => {
                assert_eq!(out, "j");
                assert_eq!(left_var, "a");
                assert_eq!(left_child, "article-title");
                assert_eq!(right_var, "b");
                assert_eq!(right_child, "title");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_attribute_predicate() {
        let q = parse(r#"For $a in document("d.xml")//review[@id="2"]/title"#).unwrap();
        assert_eq!(
            q.fors[0].path.steps,
            vec![
                Step::Descendant("review".into()),
                Step::AttrPredicate {
                    name: "id".into(),
                    equals: "2".into()
                },
                Step::Child("title".into()),
            ]
        );
    }

    #[test]
    fn pick_with_params() {
        let q = parse(
            r#"
            For $a in document("d.xml")//p
            Pick $a using PickFoo($a, 0.5, 0.3)
            "#,
        )
        .unwrap();
        assert_eq!(q.picks[0].threshold, 0.5);
        assert_eq!(q.picks[0].fraction, 0.3);
    }

    #[test]
    fn errors_are_described() {
        assert!(parse("").unwrap_err().0.contains("at least one For"));
        assert!(parse("For $a in nowhere").is_err());
        assert!(parse(r#"For $a in document("d")//p Score $a using Nope($a)"#).is_err());
        assert!(
            parse(r#"For $a in document("d")//p Score $b using ScoreFoo($a, {}, {})"#).is_err()
        );
    }
}
