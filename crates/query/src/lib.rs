//! # tix-query
//!
//! The paper's **extended XQuery dialect** (Sec. 4 / Fig. 10): FLWR
//! queries with three IR extensions —
//!
//! * `Score $x using ScoreFoo($x, {…primary…}, {…secondary…})` — attach a
//!   relevance score to every binding of `$x`;
//! * `Pick $x using PickFoo($x[, threshold, fraction])` — result-granularity
//!   control (parent/child redundancy elimination);
//! * `Threshold $x/@score > V [stop after K]` — irrelevance filtering by
//!   value and rank;
//!
//! plus `Sortby(score)`, the `descendant-or-self::*` step for the `ad*`
//! unit-of-retrieval variable, and a two-source join form with
//! `Score $j using ScoreSim($a/t1, $b/t2)` / `ScoreBar($j, $x)` covering
//! the paper's Query 3.
//!
//! The dialect is compiled onto the TIX algebra of `tix-core` — a query is
//! parsed to an AST, translated to a scored pattern tree, and evaluated
//! with the algebra's operators.
//!
//! Deviations from Fig. 10 (documented in `DESIGN.md`): the `Return`
//! clause names the variable to return (`Return $a`); the
//! `<result><score>…</score>{$a}</result>` element template the paper
//! shows is fixed as the built-in rendering rather than parsed.
//!
//! ```
//! use tix_query::run_query;
//! use tix_store::Store;
//!
//! let mut store = Store::new();
//! store.load_str("articles.xml",
//!     "<article><author><sname>Doe</sname></author>\
//!      <p>all about the search engine</p></article>").unwrap();
//!
//! let results = run_query(&store, r#"
//!     For $a in document("articles.xml")//article/descendant-or-self::*
//!     Score $a using ScoreFoo($a, {"search engine"}, {"internet"})
//!     Return $a
//!     Sortby(score)
//!     Threshold $a/@score > 0.5
//! "#).unwrap();
//! assert!(!results.is_empty());
//! assert_eq!(results[0].tag.as_deref(), Some("article"));
//! ```

mod ast;
mod eval;
mod lexer;
mod parser;

pub mod execute;
pub mod explain;
pub mod logical;
pub mod physical;
pub mod stats;

pub use ast::{ForClause, PathExpr, PickClause, Query, ScoreClause, Step, ThresholdClause};
pub use eval::{run, run_query, QueryError, ResultItem};
pub use execute::{execute, execute_phrase, execute_term_search, PlanRun};
pub use explain::explain_query;
pub use lexer::{Lexer, Token};
pub use logical::{LogicalPlan, PhraseSearch, Scoring, TermSearch};
pub use parser::{parse, ParseError};
pub use physical::{candidates, choose, AccessMethod, CostedPlan, PhysicalPlan, PlanChoice};
pub use stats::{CorpusStats, PlanInputs, PlanStats, TermStats};
