//! Tokenizer for the extended-XQuery dialect.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A bare word: keywords (`For`, `Score`, …), function and tag names.
    Ident(String),
    /// `$name`.
    Var(String),
    /// A quoted string (single or double quotes).
    Str(String),
    /// A number literal.
    Num(f64),
    /// `//`
    DoubleSlash,
    /// `/`
    Slash,
    /// `::`
    DoubleColon,
    /// `:=`
    Assign,
    /// One of `( ) { } [ ] , = > < @ *`.
    Punct(char),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Var(s) => write!(f, "${s}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Num(n) => write!(f, "{n}"),
            Token::DoubleSlash => write!(f, "//"),
            Token::Slash => write!(f, "/"),
            Token::DoubleColon => write!(f, "::"),
            Token::Assign => write!(f, ":="),
            Token::Punct(c) => write!(f, "{c}"),
        }
    }
}

/// Hand-rolled lexer; see [`Lexer::tokenize`].
pub struct Lexer;

impl Lexer {
    /// Tokenize the whole input. Returns an error message with byte offset
    /// on unexpected characters or unterminated strings.
    pub fn tokenize(input: &str) -> Result<Vec<Token>, String> {
        let mut tokens = Vec::new();
        let bytes = input.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i] as char;
            match c {
                ' ' | '\t' | '\r' | '\n' => i += 1,
                '/' => {
                    if bytes.get(i + 1) == Some(&b'/') {
                        tokens.push(Token::DoubleSlash);
                        i += 2;
                    } else {
                        tokens.push(Token::Slash);
                        i += 1;
                    }
                }
                ':' => match bytes.get(i + 1) {
                    Some(b':') => {
                        tokens.push(Token::DoubleColon);
                        i += 2;
                    }
                    Some(b'=') => {
                        tokens.push(Token::Assign);
                        i += 2;
                    }
                    _ => return Err(format!("stray ':' at byte {i}")),
                },
                '$' => {
                    let start = i + 1;
                    let mut j = start;
                    while j < bytes.len() && bytes[j].is_ascii_alphanumeric() {
                        j += 1;
                    }
                    if j == start {
                        return Err(format!("empty variable name at byte {i}"));
                    }
                    tokens.push(Token::Var(input[start..j].to_string()));
                    i = j;
                }
                '"' | '\'' => {
                    let quote = c;
                    let start = i + 1;
                    let mut j = start;
                    while j < bytes.len() && bytes[j] as char != quote {
                        j += 1;
                    }
                    if j >= bytes.len() {
                        return Err(format!("unterminated string at byte {i}"));
                    }
                    tokens.push(Token::Str(input[start..j].to_string()));
                    i = j + 1;
                }
                '(' | ')' | '{' | '}' | '[' | ']' | ',' | '=' | '>' | '<' | '@' | '*' => {
                    tokens.push(Token::Punct(c));
                    i += 1;
                }
                _ if c.is_ascii_digit() => {
                    let start = i;
                    let mut j = i;
                    while j < bytes.len()
                        && ((bytes[j] as char).is_ascii_digit() || bytes[j] == b'.')
                    {
                        j += 1;
                    }
                    let text = &input[start..j];
                    let value = text
                        .parse::<f64>()
                        .map_err(|_| format!("bad number {text:?} at byte {start}"))?;
                    tokens.push(Token::Num(value));
                    i = j;
                }
                // Idents are ASCII-only: the scan is byte-indexed, and
                // treating a multi-byte character's lead byte as alphabetic
                // would split the slice inside the character. Non-ASCII
                // text is still fine inside quoted strings, whose
                // boundaries are the ASCII quote bytes.
                _ if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    let mut j = i;
                    while j < bytes.len() {
                        let cj = bytes[j] as char;
                        if cj.is_ascii_alphanumeric() || cj == '_' || cj == '-' {
                            j += 1;
                        } else {
                            break;
                        }
                    }
                    tokens.push(Token::Ident(input[start..j].to_string()));
                    i = j;
                }
                _ => return Err(format!("unexpected character {c:?} at byte {i}")),
            }
        }
        Ok(tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let tokens = Lexer::tokenize(r#"For $a in document("x.xml")//article"#).unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("For".into()),
                Token::Var("a".into()),
                Token::Ident("in".into()),
                Token::Ident("document".into()),
                Token::Punct('('),
                Token::Str("x.xml".into()),
                Token::Punct(')'),
                Token::DoubleSlash,
                Token::Ident("article".into()),
            ]
        );
    }

    #[test]
    fn axis_and_assign() {
        let tokens = Lexer::tokenize("descendant-or-self::* := $b").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("descendant-or-self".into()),
                Token::DoubleColon,
                Token::Punct('*'),
                Token::Assign,
                Token::Var("b".into()),
            ]
        );
    }

    #[test]
    fn numbers_and_braces() {
        let tokens = Lexer::tokenize(r#"{"search engine", "ir"} > 4.5"#).unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Punct('{'),
                Token::Str("search engine".into()),
                Token::Punct(','),
                Token::Str("ir".into()),
                Token::Punct('}'),
                Token::Punct('>'),
                Token::Num(4.5),
            ]
        );
    }

    #[test]
    fn single_quotes() {
        let tokens = Lexer::tokenize("'Doe'").unwrap();
        assert_eq!(tokens, vec![Token::Str("Doe".into())]);
    }

    #[test]
    fn errors() {
        assert!(Lexer::tokenize("\"unterminated").is_err());
        assert!(Lexer::tokenize("$").is_err());
        assert!(Lexer::tokenize("a : b").is_err());
        assert!(Lexer::tokenize("#").is_err());
    }

    #[test]
    fn non_ascii_outside_strings_errors_not_panics() {
        // Multi-byte characters must not be byte-sliced into idents.
        assert!(Lexer::tokenize("é").is_err());
        assert!(Lexer::tokenize("Für $a").is_err());
        assert!(Lexer::tokenize("$héllo").is_err());
    }

    #[test]
    fn non_ascii_inside_strings_ok() {
        let tokens = Lexer::tokenize("\"héllo wörld\"").unwrap();
        assert_eq!(tokens, vec![Token::Str("héllo wörld".into())]);
    }
}
