//! Execute a physical plan.
//!
//! Every plan for the same [`LogicalPlan`] returns **byte-identical**
//! results — the planner only ever trades time, never output. That
//! property rests on three facts, each independently tested:
//!
//! 1. TermJoin, Comp1, Comp2, and the Generalized Meet accumulate the
//!    same integer occurrence counters per ancestor and fold them in the
//!    same term order, so their scores are bit-equal (the `tix-exec`
//!    differential suites);
//! 2. the streams feed `sort_by_node`, whose node keys are unique, so
//!    order is canonical regardless of how the method emitted it;
//! 3. the pushdown driver's early exit is guarded by the §4.2 score bound
//!    and a strict-order top-k accumulator (see `tix_exec::pushdown`).
//!
//! The cancellation contract matches `Database::search_cancellable`:
//! `cancelled` is polled before scoring, between scoring and Pick, and
//! between Pick and top-k (the pushdown path polls at least as often —
//! on entry, per document, and before the final sort).

use tix_exec::composite::{comp1, comp2};
use tix_exec::meet::generalized_meet;
use tix_exec::parallel::{phrase_finder_parallel, pick_stream_parallel, term_join_parallel};
use tix_exec::phrase::comp3;
use tix_exec::pushdown;
use tix_exec::scored::{sort_by_node, ScoredNode};
use tix_exec::termjoin::{ChildCountMode, ComplexScorer, IdfScorer, SimpleScorer, TermJoinScorer};
use tix_exec::topk;
use tix_index::IndexReader;
use tix_store::Store;

use crate::logical::{LogicalPlan, PhraseSearch, Scoring, TermSearch};
use crate::physical::{AccessMethod, PhysicalPlan};

/// A completed plan execution: the results plus the scan accounting
/// EXPLAIN ANALYZE-style reporting and the planner bench consume.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRun {
    /// Ranked results, best first.
    pub results: Vec<ScoredNode>,
    /// Postings actually consumed.
    pub postings_scanned: u64,
    /// Postings a full scan would consume.
    pub postings_total: u64,
}

impl PlanRun {
    /// Did the plan's early exit skip part of the posting lists?
    pub fn early_exit(&self) -> bool {
        self.postings_scanned < self.postings_total
    }
}

/// Execute `logical` with the chosen physical `plan`. Returns `None` iff
/// `cancelled` reported `true` at one of the poll points.
pub fn execute(
    store: &Store,
    index: &dyn IndexReader,
    logical: &LogicalPlan,
    plan: &PhysicalPlan,
    threads: usize,
    cancelled: &dyn Fn() -> bool,
) -> Option<PlanRun> {
    match logical {
        LogicalPlan::TermSearch(search) => {
            execute_term_search(store, index, search, plan, threads, cancelled)
        }
        LogicalPlan::Phrase(phrase) => {
            execute_phrase(store, index, phrase, plan, threads, cancelled)
        }
    }
}

/// Execute a term search with the chosen plan.
pub fn execute_term_search(
    store: &Store,
    index: &dyn IndexReader,
    search: &TermSearch,
    plan: &PhysicalPlan,
    threads: usize,
    cancelled: &dyn Fn() -> bool,
) -> Option<PlanRun> {
    let term_refs: Vec<&str> = search.terms.iter().map(String::as_str).collect();
    // The Enhanced variant is TermJoin with child counts answered by the
    // store's child-count index instead of navigation; for non-complex
    // scoring the mode is irrelevant (no child counts are read).
    let mode = if plan.access == AccessMethod::EnhancedTermJoin {
        ChildCountMode::Index
    } else {
        ChildCountMode::Navigate
    };
    match &search.scoring {
        Scoring::SimpleUniform => {
            let scorer = SimpleScorer::uniform();
            run_term_search(
                store, index, search, plan, &term_refs, &scorer, threads, cancelled,
            )
        }
        Scoring::SimpleWeighted(weights) => {
            let scorer = SimpleScorer::new(weights.clone());
            run_term_search(
                store, index, search, plan, &term_refs, &scorer, threads, cancelled,
            )
        }
        Scoring::Complex => {
            let scorer = ComplexScorer::uniform(mode);
            run_term_search(
                store, index, search, plan, &term_refs, &scorer, threads, cancelled,
            )
        }
        Scoring::Idf => {
            let scorer = IdfScorer::new(index, store.doc_count(), &term_refs);
            run_term_search(
                store, index, search, plan, &term_refs, &scorer, threads, cancelled,
            )
        }
    }
}

/// Total postings the query's terms hold in the index.
fn postings_total(index: &dyn IndexReader, terms: &[&str]) -> u64 {
    terms
        .iter()
        .map(|t| u64::try_from(index.postings(t).len()).unwrap_or(u64::MAX))
        .fold(0u64, u64::saturating_add)
}

#[allow(clippy::too_many_arguments)]
fn run_term_search<S: TermJoinScorer>(
    store: &Store,
    index: &dyn IndexReader,
    search: &TermSearch,
    plan: &PhysicalPlan,
    term_refs: &[&str],
    scorer: &S,
    threads: usize,
    cancelled: &dyn Fn() -> bool,
) -> Option<PlanRun> {
    if plan.pushdown {
        let run = pushdown::search_topk(
            store,
            index,
            term_refs,
            scorer,
            search.pick.as_ref(),
            search.k,
            search.min_score,
            cancelled,
        )?;
        return Some(PlanRun {
            results: run.results,
            postings_scanned: run.postings_scanned,
            postings_total: run.postings_total,
        });
    }
    if cancelled() {
        return None;
    }
    let scored = match plan.access {
        AccessMethod::Comp1 => sort_by_node(comp1(store, index, term_refs, scorer)),
        AccessMethod::Comp2 => sort_by_node(comp2(store, index, term_refs, scorer)),
        AccessMethod::GeneralizedMeet => {
            sort_by_node(generalized_meet(store, index, term_refs, scorer))
        }
        // TermJoin, EnhancedTermJoin — and, defensively, the phrase
        // methods, which cannot evaluate a term search.
        _ => sort_by_node(term_join_parallel(store, index, term_refs, scorer, threads)),
    };
    if cancelled() {
        return None;
    }
    let picked = match &search.pick {
        Some(p) => pick_stream_parallel(store, &scored, p, threads),
        None => scored,
    };
    if cancelled() {
        return None;
    }
    let filtered = match search.min_score {
        Some(m) => topk::min_score(picked, m),
        None => picked,
    };
    let total = postings_total(index, term_refs);
    Some(PlanRun {
        results: topk::top_k(filtered, search.k),
        postings_scanned: total,
        postings_total: total,
    })
}

/// Execute a phrase search with the chosen plan.
pub fn execute_phrase(
    store: &Store,
    index: &dyn IndexReader,
    phrase: &PhraseSearch,
    plan: &PhysicalPlan,
    threads: usize,
    cancelled: &dyn Fn() -> bool,
) -> Option<PlanRun> {
    if cancelled() {
        return None;
    }
    let term_refs: Vec<&str> = phrase.terms.iter().map(String::as_str).collect();
    let total = postings_total(index, &term_refs);
    if term_refs.len() < 2 {
        // A phrase needs two terms; an underspecified phrase matches
        // nothing (PhraseFinder itself asserts on shorter inputs).
        return Some(PlanRun {
            results: Vec::new(),
            postings_scanned: 0,
            postings_total: total,
        });
    }
    let matches = match plan.access {
        AccessMethod::Comp3 => comp3(store, index, &term_refs),
        _ => phrase_finder_parallel(store, index, &term_refs, threads),
    };
    if cancelled() {
        return None;
    }
    let sorted = sort_by_node(matches);
    if cancelled() {
        return None;
    }
    let filtered = match phrase.min_score {
        Some(m) => topk::min_score(sorted, m),
        None => sorted,
    };
    Some(PlanRun {
        results: topk::top_k(filtered, phrase.k),
        postings_scanned: total,
        postings_total: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tix_exec::pick::PickParams;
    use tix_index::InvertedIndex;

    fn fixture() -> (Store, InvertedIndex) {
        let mut store = Store::new();
        for i in 0..12u32 {
            let hits = 12 - i;
            let mut body = String::from("<doc><sec><p>");
            for _ in 0..hits {
                body.push_str("rust ");
            }
            body.push_str("xml search engine</p></sec><sec><p>filler xml</p></sec></doc>");
            store.load_str(&format!("d{i}.xml"), &body).unwrap();
        }
        let index = InvertedIndex::build(&store);
        (store, index)
    }

    fn term_search(scoring: Scoring, k: usize) -> TermSearch {
        TermSearch {
            terms: vec!["rust".to_string(), "xml".to_string()],
            scoring,
            pick: Some(PickParams {
                relevance_threshold: 1.0,
                fraction: 0.5,
            }),
            k,
            min_score: Some(0.5),
        }
    }

    /// Every applicable access method returns the identical byte stream.
    #[test]
    fn all_term_search_plans_agree_exactly() {
        let (store, index) = fixture();
        for scoring in [
            Scoring::SimpleUniform,
            Scoring::SimpleWeighted(vec![0.8, 0.6]),
            Scoring::Complex,
            Scoring::Idf,
        ] {
            let search = term_search(scoring, 5);
            let logical = LogicalPlan::TermSearch(search);
            let inputs = crate::stats::PlanInputs::gather(&store, &index, logical.terms());
            let candidates = crate::physical::candidates(&logical, &inputs);
            let baseline = execute(
                &store,
                &index,
                &logical,
                &crate::physical::PhysicalPlan::scan(AccessMethod::TermJoin),
                1,
                &|| false,
            )
            .unwrap();
            for c in candidates {
                let run = execute(&store, &index, &logical, &c.plan, 1, &|| false).unwrap();
                assert_eq!(
                    run.results,
                    baseline.results,
                    "plan {} diverged",
                    c.plan.label()
                );
            }
        }
    }

    #[test]
    fn pushdown_plan_reports_early_exit() {
        let (store, index) = fixture();
        let logical = LogicalPlan::TermSearch(term_search(Scoring::SimpleUniform, 2));
        let plan = crate::physical::PhysicalPlan::pushed(AccessMethod::TermJoin);
        let run = execute(&store, &index, &logical, &plan, 1, &|| false).unwrap();
        assert!(run.early_exit());
        let full = execute(
            &store,
            &index,
            &logical,
            &crate::physical::PhysicalPlan::scan(AccessMethod::TermJoin),
            1,
            &|| false,
        )
        .unwrap();
        assert!(!full.early_exit());
        assert_eq!(run.results, full.results);
        assert!(run.postings_scanned < full.postings_scanned);
    }

    #[test]
    fn phrase_plans_agree_exactly() {
        let (store, index) = fixture();
        let logical = LogicalPlan::Phrase(PhraseSearch {
            terms: vec!["search".to_string(), "engine".to_string()],
            k: usize::MAX,
            min_score: None,
        });
        let finder = execute(
            &store,
            &index,
            &logical,
            &crate::physical::PhysicalPlan::scan(AccessMethod::PhraseFinder),
            1,
            &|| false,
        )
        .unwrap();
        let baseline = execute(
            &store,
            &index,
            &logical,
            &crate::physical::PhysicalPlan::scan(AccessMethod::Comp3),
            1,
            &|| false,
        )
        .unwrap();
        assert_eq!(finder.results, baseline.results);
        assert!(!finder.results.is_empty());
    }

    #[test]
    fn short_phrase_matches_nothing() {
        let (store, index) = fixture();
        let logical = LogicalPlan::Phrase(PhraseSearch {
            terms: vec!["rust".to_string()],
            k: 5,
            min_score: None,
        });
        let run = execute(
            &store,
            &index,
            &logical,
            &crate::physical::PhysicalPlan::scan(AccessMethod::PhraseFinder),
            1,
            &|| false,
        )
        .unwrap();
        assert!(run.results.is_empty());
    }

    #[test]
    fn cancellation_aborts_every_plan() {
        let (store, index) = fixture();
        let logical = LogicalPlan::TermSearch(term_search(Scoring::SimpleUniform, 5));
        let inputs = crate::stats::PlanInputs::gather(&store, &index, logical.terms());
        for c in crate::physical::candidates(&logical, &inputs) {
            assert!(
                execute(&store, &index, &logical, &c.plan, 1, &|| true).is_none(),
                "plan {} ignored cancellation",
                c.plan.label()
            );
            // Flip on the second poll: the run must still abort.
            let polls = std::cell::Cell::new(0u32);
            let late = execute(&store, &index, &logical, &c.plan, 1, &|| {
                polls.set(polls.get() + 1);
                polls.get() >= 2
            });
            assert!(late.is_none(), "plan {}", c.plan.label());
            assert!(polls.get() >= 2, "plan {}", c.plan.label());
        }
    }

    #[test]
    fn threads_do_not_change_results() {
        let (store, index) = fixture();
        let logical = LogicalPlan::TermSearch(term_search(Scoring::SimpleUniform, 5));
        let plan = crate::physical::PhysicalPlan::scan(AccessMethod::TermJoin);
        let one = execute(&store, &index, &logical, &plan, 1, &|| false).unwrap();
        for threads in [2, 8] {
            let many = execute(&store, &index, &logical, &plan, threads, &|| false).unwrap();
            assert_eq!(one, many, "{threads} threads");
        }
    }
}
