//! Logical query plans: what the engine must compute, with no commitment
//! to *how*.
//!
//! The planner's pipeline is AST → [`LogicalPlan`] → costed
//! [`crate::physical::PhysicalPlan`]. A logical plan captures exactly the
//! information the cost model and the executor need — the terms, the
//! scoring function, the optional Pick stage, and the Threshold clause's
//! `k` / min-score — and nothing else, so tests can fabricate one in a
//! line and the `Database` facade can build one straight from its
//! `search(terms, pick, k)` arguments without going through the dialect
//! parser.

use tix_exec::pick::PickParams;

use crate::ast::{Query, ScoreClause};
use crate::eval::QueryError;

/// ScoreFoo's primary-phrase weight (the paper's 0.8).
pub const PRIMARY_WEIGHT: f64 = 0.8;
/// ScoreFoo's secondary-phrase weight (the paper's 0.6).
pub const SECONDARY_WEIGHT: f64 = 0.6;

/// How matched nodes are scored — selects the scorer the executor
/// constructs and the access methods the planner may consider (Complex
/// scoring unlocks Enhanced TermJoin's child-count index).
#[derive(Debug, Clone, PartialEq)]
pub enum Scoring {
    /// Every term weighs 1 (the `Database::search` default).
    SimpleUniform,
    /// Per-term weights, in term order (ScoreFoo's 0.8/0.6 scheme).
    SimpleWeighted(Vec<f64>),
    /// The paper's complex scorer: proximity and child-coverage factors
    /// on top of the weighted counts.
    Complex,
    /// tf·idf weighting from the index's document frequencies.
    Idf,
}

impl Scoring {
    /// Stable label used by EXPLAIN.
    pub fn label(&self) -> &'static str {
        match self {
            Scoring::SimpleUniform => "simple-uniform",
            Scoring::SimpleWeighted(_) => "simple-weighted",
            Scoring::Complex => "complex",
            Scoring::Idf => "idf",
        }
    }
}

/// A scored containment search: the TermJoin-family workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TermSearch {
    /// Query terms, normalized, in query order.
    pub terms: Vec<String>,
    /// The scoring function.
    pub scoring: Scoring,
    /// Optional Pick stage (parent/child redundancy elimination).
    pub pick: Option<PickParams>,
    /// Result-count cap (`Threshold … stop after k`); `usize::MAX` when
    /// the query has no rank cutoff.
    pub k: usize,
    /// Exclusive minimum score (`Threshold $v/@score > min`).
    pub min_score: Option<f64>,
}

/// A phrase containment search: the PhraseFinder workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PhraseSearch {
    /// The phrase's terms, in phrase order (at least two).
    pub terms: Vec<String>,
    /// Result-count cap; `usize::MAX` when unbounded.
    pub k: usize,
    /// Exclusive minimum score (occurrence count).
    pub min_score: Option<f64>,
}

/// What the query computes, planner-visible form.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scored containment search.
    TermSearch(TermSearch),
    /// Phrase search.
    Phrase(PhraseSearch),
}

impl LogicalPlan {
    /// The query terms, whatever the plan kind.
    pub fn terms(&self) -> &[String] {
        match self {
            LogicalPlan::TermSearch(s) => &s.terms,
            LogicalPlan::Phrase(p) => &p.terms,
        }
    }

    /// Lower a parsed dialect query to a logical plan for costing.
    ///
    /// The dialect evaluator (`crate::eval`) is untouched by the planner —
    /// this lowering exists so `tix explain --query` can cost the scoring
    /// workload a dialect query induces. Rules:
    ///
    /// * single-`For` queries with one `ScoreFoo` clause are supported
    ///   (joins score during the join itself; there is nothing for the
    ///   TermJoin-family planner to choose);
    /// * a ScoreFoo consisting of exactly one multi-word phrase lowers to
    ///   a [`PhraseSearch`];
    /// * otherwise every phrase is flattened to its words, each carrying
    ///   the phrase's weight (primary 0.8 / secondary 0.6) — an
    ///   approximation of ScoreFoo's per-phrase scoring that preserves
    ///   the posting-list footprint the cost model charges for.
    pub fn from_query(query: &Query) -> Result<LogicalPlan, QueryError> {
        if query.fors.len() != 1 {
            return Err(QueryError::Unsupported(
                "EXPLAIN covers single-source queries (joins are scored \
                 during the join itself)"
                    .to_string(),
            ));
        }
        let mut score_foo: Option<(&Vec<String>, &Vec<String>)> = None;
        for score in &query.scores {
            match score {
                ScoreClause::Foo {
                    primary, secondary, ..
                } => {
                    if score_foo.is_some() {
                        return Err(QueryError::Unsupported(
                            "EXPLAIN covers a single ScoreFoo clause".to_string(),
                        ));
                    }
                    score_foo = Some((primary, secondary));
                }
                other => {
                    return Err(QueryError::Unsupported(format!(
                        "EXPLAIN cannot cost {other:?} (join scoring)"
                    )));
                }
            }
        }
        let Some((primary, secondary)) = score_foo else {
            return Err(QueryError::Unsupported(
                "the query has no Score clause to plan".to_string(),
            ));
        };
        let (k, min_score) = match &query.threshold {
            Some(t) => (t.stop_after.unwrap_or(usize::MAX), Some(t.min_score)),
            None => (usize::MAX, None),
        };
        let pick = query.picks.first().map(|p| PickParams {
            relevance_threshold: p.threshold,
            fraction: p.fraction,
        });

        let phrase_words: Vec<Vec<&str>> = primary
            .iter()
            .chain(secondary)
            .map(|p| p.split_whitespace().collect())
            .collect();
        if phrase_words.iter().all(|w| w.is_empty()) {
            return Err(QueryError::Unsupported(
                "ScoreFoo has no query terms".to_string(),
            ));
        }
        // A single multi-word phrase is the PhraseFinder workload.
        if let [words] = phrase_words.as_slice() {
            if words.len() >= 2 {
                return Ok(LogicalPlan::Phrase(PhraseSearch {
                    terms: words.iter().map(|w| (*w).to_string()).collect(),
                    k,
                    min_score,
                }));
            }
        }
        let mut terms = Vec::new();
        let mut weights = Vec::new();
        for (i, phrase) in primary.iter().chain(secondary).enumerate() {
            let weight = if i < primary.len() {
                PRIMARY_WEIGHT
            } else {
                SECONDARY_WEIGHT
            };
            for word in phrase.split_whitespace() {
                terms.push(word.to_string());
                weights.push(weight);
            }
        }
        Ok(LogicalPlan::TermSearch(TermSearch {
            terms,
            scoring: Scoring::SimpleWeighted(weights),
            pick,
            k,
            min_score,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn fig1_query_lowers_to_weighted_term_search() {
        let query = parse(
            r#"
            For $a in document("articles.xml")//article/descendant-or-self::*
            Score $a using ScoreFoo($a, {"search engine"}, {"internet"})
            Return $a
            Sortby(score)
            Threshold $a/@score > 0.5 stop after 10
            "#,
        )
        .unwrap();
        let plan = LogicalPlan::from_query(&query).unwrap();
        let LogicalPlan::TermSearch(search) = plan else {
            panic!("expected a term search, got {plan:?}");
        };
        assert_eq!(search.terms, ["search", "engine", "internet"]);
        assert_eq!(search.scoring, Scoring::SimpleWeighted(vec![0.8, 0.8, 0.6]));
        assert_eq!(search.k, 10);
        assert_eq!(search.min_score, Some(0.5));
        assert!(search.pick.is_none());
    }

    #[test]
    fn single_multiword_phrase_lowers_to_phrase_search() {
        let query = parse(
            r#"
            For $a in document("a.xml")//article
            Score $a using ScoreFoo($a, {"search engine"}, {})
            "#,
        )
        .unwrap();
        let plan = LogicalPlan::from_query(&query).unwrap();
        let LogicalPlan::Phrase(phrase) = plan else {
            panic!("expected a phrase search, got {plan:?}");
        };
        assert_eq!(phrase.terms, ["search", "engine"]);
        assert_eq!(phrase.k, usize::MAX);
        assert_eq!(phrase.min_score, None);
    }

    #[test]
    fn pick_clause_carries_into_plan() {
        let query = parse(
            r#"
            For $a in document("a.xml")//article/descendant-or-self::*
            Score $a using ScoreFoo($a, {"rust"}, {})
            Pick $a using PickFoo($a, 0.9, 0.25)
            "#,
        )
        .unwrap();
        let LogicalPlan::TermSearch(search) = LogicalPlan::from_query(&query).unwrap() else {
            panic!("expected a term search");
        };
        let pick = search.pick.unwrap();
        assert!((pick.relevance_threshold - 0.9).abs() < 1e-12);
        assert!((pick.fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn joins_and_scoreless_queries_are_rejected() {
        let join = parse(
            r#"
            For $a in document("a.xml")//article
            For $b in document("b.xml")//review
            Score $j using ScoreSim($a/t, $b/t)
            "#,
        )
        .unwrap();
        assert!(matches!(
            LogicalPlan::from_query(&join),
            Err(QueryError::Unsupported(_))
        ));
        let scoreless = parse(r#"For $a in document("a.xml")//article"#).unwrap();
        assert!(matches!(
            LogicalPlan::from_query(&scoreless),
            Err(QueryError::Unsupported(_))
        ));
    }
}
