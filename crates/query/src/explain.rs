//! Deterministic EXPLAIN rendering: the statistics the planner read, every
//! candidate plan with its cost, and the chosen plan.
//!
//! The output is plain text with one fact per line, stable across
//! platforms (costs are saturating integers, fractional statistics are
//! printed in their exact milli form) — golden snapshot tests assert on it
//! verbatim.

use std::fmt::Write as _;

use tix_core::histogram::ScoreHistogram;
use tix_index::IndexReader;
use tix_store::Store;

use crate::eval::QueryError;
use crate::logical::LogicalPlan;
use crate::parser::parse;
use crate::physical::{choose, PlanChoice};
use crate::stats::PlanInputs;

/// Print a milli-scaled statistic as a fixed-point decimal (`1444` →
/// `1.444`).
fn milli(value: u64) -> String {
    format!("{}.{:03}", value / 1000, value % 1000)
}

/// Render a `k` that may be the "unbounded" sentinel.
fn fmt_k(k: usize) -> String {
    if k == usize::MAX {
        "unbounded".to_string()
    } else {
        k.to_string()
    }
}

/// Render the full EXPLAIN report for a logical plan. `df_histogram`
/// (when available) adds the dictionary's document-frequency quartiles so
/// the query's terms can be placed in the collection's distribution.
pub fn render(
    logical: &LogicalPlan,
    inputs: &PlanInputs,
    choice: &PlanChoice,
    df_histogram: Option<&ScoreHistogram>,
) -> String {
    let mut out = String::new();
    match logical {
        LogicalPlan::TermSearch(s) => {
            let _ = writeln!(
                out,
                "explain: term-search terms={:?} scoring={} k={}",
                s.terms,
                s.scoring.label(),
                fmt_k(s.k),
            );
            if let Some(p) = &s.pick {
                let _ = writeln!(
                    out,
                    "  pick: threshold={} fraction={}",
                    p.relevance_threshold, p.fraction
                );
            }
            if let Some(m) = s.min_score {
                let _ = writeln!(out, "  threshold: score > {m}");
            }
        }
        LogicalPlan::Phrase(p) => {
            let _ = writeln!(out, "explain: phrase terms={:?} k={}", p.terms, fmt_k(p.k),);
            if let Some(m) = p.min_score {
                let _ = writeln!(out, "  threshold: score > {m}");
            }
        }
    }
    let c = &inputs.corpus;
    let _ = writeln!(
        out,
        "statistics: documents={} elements={} nodes={} tokens={} \
         avg_depth={} avg_children={}",
        c.documents,
        c.elements,
        c.total_nodes,
        c.total_tokens,
        milli(c.avg_depth_milli),
        milli(c.avg_children_milli),
    );
    for t in &inputs.terms {
        let _ = write!(
            out,
            "  term {:?}: cf={} df={} nf={}",
            t.term, t.collection_frequency, t.document_frequency, t.node_frequency
        );
        // Only v3 (block-max) indexes carry this; keep v2 renders stable.
        if let Some(max) = t.max_doc_count {
            let _ = write!(out, " max_dc={max}");
        }
        let _ = writeln!(out);
    }
    if let Some(hist) = df_histogram {
        let _ = writeln!(
            out,
            "  dictionary df: terms={} min={} p25={} p50={} p75={} max={}",
            hist.count(),
            hist.min(),
            hist.quantile(0.25),
            hist.quantile(0.5),
            hist.quantile(0.75),
            hist.max(),
        );
    }
    let _ = writeln!(out, "candidates:");
    for c in &choice.candidates {
        let marker = if c.plan == choice.chosen.plan {
            "  <- chosen"
        } else {
            ""
        };
        let _ = writeln!(out, "  {:<28} cost={}{}", c.plan.label(), c.cost, marker);
    }
    let _ = writeln!(out, "chosen: {}", choice.chosen.plan.label());
    out
}

/// Parse a dialect query, lower it, and explain the plan the workload
/// would get — the `tix explain --query` entry point.
pub fn explain_query(
    store: &Store,
    index: &dyn IndexReader,
    text: &str,
) -> Result<String, QueryError> {
    let query = parse(text)?;
    let logical = LogicalPlan::from_query(&query)?;
    let inputs = PlanInputs::gather(store, index, logical.terms());
    let choice = choose(&logical, &inputs);
    Ok(render(&logical, &inputs, &choice, None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{Scoring, TermSearch};
    use crate::stats::{CorpusStats, TermStats};
    use tix_index::InvertedIndex;

    fn inputs() -> PlanInputs {
        PlanInputs {
            corpus: CorpusStats {
                documents: 1000,
                elements: 100_000,
                total_nodes: 250_000,
                distinct_tags: 40,
                max_depth: 9,
                avg_depth_milli: 3456,
                avg_children_milli: 2100,
                total_tokens: 1_500_000,
            },
            terms: vec![
                TermStats {
                    term: "search".to_string(),
                    collection_frequency: 500,
                    document_frequency: 300,
                    node_frequency: 450,
                    max_doc_count: None,
                },
                TermStats {
                    term: "engine".to_string(),
                    collection_frequency: 200,
                    document_frequency: 150,
                    node_frequency: 180,
                    max_doc_count: None,
                },
            ],
        }
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let logical = LogicalPlan::TermSearch(TermSearch {
            terms: vec!["search".to_string(), "engine".to_string()],
            scoring: Scoring::SimpleUniform,
            pick: None,
            k: 10,
            min_score: Some(0.5),
        });
        let ins = inputs();
        let choice = choose(&logical, &ins);
        let text = render(&logical, &ins, &choice, None);
        assert_eq!(text, render(&logical, &ins, &choice, None));
        assert!(text.contains("term-search"));
        assert!(text.contains("avg_depth=3.456"));
        assert!(text.contains("term \"search\": cf=500 df=300 nf=450"));
        assert!(text.contains("<- chosen"));
        assert!(text.lines().last().unwrap().starts_with("chosen: "));
        // Every candidate the planner costed is listed.
        for c in &choice.candidates {
            assert!(text.contains(&c.plan.label()), "{}", c.plan.label());
        }
    }

    #[test]
    fn explain_query_runs_end_to_end() {
        let mut store = Store::new();
        store
            .load_str(
                "articles.xml",
                "<article><p>search engine basics</p></article>",
            )
            .unwrap();
        let index = InvertedIndex::build(&store);
        let text = explain_query(
            &store,
            &index,
            r#"
            For $a in document("articles.xml")//article/descendant-or-self::*
            Score $a using ScoreFoo($a, {"search"}, {"internet"})
            Threshold $a/@score > 0.5 stop after 3
            "#,
        )
        .unwrap();
        assert!(text.contains("scoring=simple-weighted"));
        assert!(text.contains("k=3"));
        assert!(text.contains("term \"internet\": cf=0 df=0 nf=0"));
    }

    #[test]
    fn explain_query_propagates_parse_errors() {
        let store = Store::new();
        let index = InvertedIndex::build(&store);
        assert!(explain_query(&store, &index, "For broken $").is_err());
    }
}
