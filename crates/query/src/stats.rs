//! Statistics the cost-based planner consumes.
//!
//! The store and index already maintain everything the planner needs —
//! document/element counts and depth sums ([`tix_store::StoreStats`]),
//! per-term collection/document/node frequencies
//! ([`tix_index::InvertedIndex`]) — this module just snapshots them into a
//! deterministic, integer-only shape ([`PlanInputs`]) that the cost model
//! in [`crate::physical`] can consume and that tests can **fabricate**
//! to force any plan choice without building a matching corpus.
//!
//! Fractional quantities (average depth, average children per element)
//! are carried in *milli* units (thousandths, rounded down) so the whole
//! planner runs on `u64` arithmetic: no float rounding, no
//! platform-dependent plan choices.

use tix_core::histogram::ScoreHistogram;
use tix_index::IndexReader;
use tix_store::Store;

/// Corpus-level statistics (one snapshot per store/index generation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusStats {
    /// Loaded documents.
    pub documents: u64,
    /// Element nodes across all documents.
    pub elements: u64,
    /// Element + text nodes.
    pub total_nodes: u64,
    /// Distinct tag names.
    pub distinct_tags: u64,
    /// Deepest nesting level (root = 0).
    pub max_depth: u64,
    /// Average node depth in thousandths (`level_sum * 1000 /
    /// total_nodes`): the ancestor-expansion factor the planner charges
    /// materializing baselines (Comp1, Generalized Meet) for.
    pub avg_depth_milli: u64,
    /// Average children per element in thousandths — the per-node
    /// navigation fan-out Enhanced TermJoin's child-count index avoids.
    pub avg_children_milli: u64,
    /// Total tokens in the inverted index.
    pub total_tokens: u64,
}

impl CorpusStats {
    /// Snapshot the loaded corpus.
    pub fn gather(store: &Store, index: &dyn IndexReader) -> Self {
        let stats = store.stats();
        let documents = u64::try_from(stats.documents).unwrap_or(u64::MAX);
        let elements = u64::try_from(stats.elements).unwrap_or(u64::MAX);
        let total_nodes = u64::try_from(stats.total_nodes()).unwrap_or(u64::MAX);
        let avg_depth_milli = stats
            .level_sum
            .saturating_mul(1000)
            .checked_div(total_nodes)
            .unwrap_or(0);
        // Every non-root node is some element's child, so the average
        // fan-out is (total_nodes - documents) / elements.
        let avg_children_milli = total_nodes
            .saturating_sub(documents)
            .saturating_mul(1000)
            .checked_div(elements)
            .unwrap_or(0);
        CorpusStats {
            documents,
            elements,
            total_nodes,
            distinct_tags: u64::try_from(stats.distinct_tags).unwrap_or(u64::MAX),
            max_depth: u64::from(stats.max_depth),
            avg_depth_milli,
            avg_children_milli,
            total_tokens: index.total_tokens(),
        }
    }
}

/// Per-query-term statistics, straight off the posting lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermStats {
    /// The query term (normalized form).
    pub term: String,
    /// Total occurrences in the collection.
    pub collection_frequency: u64,
    /// Distinct documents containing the term.
    pub document_frequency: u64,
    /// Distinct text nodes containing the term.
    pub node_frequency: u64,
    /// Maximum whole-document occurrence count, when the index
    /// representation carries block-max metadata (v3 only). Feeds the
    /// planner's pushdown estimate: with it the §4.2 early exit provably
    /// fires near the optimistic point.
    pub max_doc_count: Option<u64>,
}

impl TermStats {
    /// Look a term up in the index. Unknown terms get all-zero
    /// frequencies (their posting lists are empty).
    pub fn lookup(index: &dyn IndexReader, term: &str) -> Self {
        match index.term_summary(term) {
            Some(summary) => TermStats {
                term: term.to_string(),
                collection_frequency: u64::try_from(summary.collection_frequency)
                    .unwrap_or(u64::MAX),
                document_frequency: u64::from(summary.doc_frequency),
                node_frequency: u64::from(summary.node_frequency),
                max_doc_count: index.max_doc_count(term).map(u64::from),
            },
            None => TermStats {
                term: term.to_string(),
                collection_frequency: 0,
                document_frequency: 0,
                node_frequency: 0,
                max_doc_count: None,
            },
        }
    }
}

/// Everything the cost model reads: corpus shape + the query's term
/// statistics. Fabricate this directly in tests to force plan flips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanInputs {
    /// Corpus-level statistics.
    pub corpus: CorpusStats,
    /// One entry per query term, in query order.
    pub terms: Vec<TermStats>,
}

impl PlanInputs {
    /// Gather inputs for `terms` against a live store + index.
    pub fn gather<S: AsRef<str>>(store: &Store, index: &dyn IndexReader, terms: &[S]) -> Self {
        PlanInputs {
            corpus: CorpusStats::gather(store, index),
            terms: terms
                .iter()
                .map(|t| TermStats::lookup(index, t.as_ref()))
                .collect(),
        }
    }

    /// Total postings across the query's terms (the `F` of the cost
    /// model).
    pub fn total_postings(&self) -> u64 {
        self.terms
            .iter()
            .fold(0u64, |acc, t| acc.saturating_add(t.collection_frequency))
    }

    /// Do *all* query terms carry block-max metadata (v3 index)? When
    /// true the pushdown runner skips provably non-contributing
    /// documents, and the cost model discounts its scan estimate.
    pub fn block_max_available(&self) -> bool {
        !self.terms.is_empty() && self.terms.iter().all(|t| t.max_doc_count.is_some())
    }

    /// Upper bound on documents containing *any* query term
    /// (`min(documents, Σ df)`), the denominator of the pushdown
    /// early-exit fraction.
    pub fn docs_union_bound(&self) -> u64 {
        let sum = self
            .terms
            .iter()
            .fold(0u64, |acc, t| acc.saturating_add(t.document_frequency));
        sum.min(self.corpus.documents)
    }
}

/// A cached per-generation statistics snapshot: the corpus shape plus a
/// histogram of the dictionary's document frequencies (quartiles of which
/// EXPLAIN reports, so a reader can see where a query's terms sit in the
/// collection's frequency distribution).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStats {
    /// Corpus-level statistics.
    pub corpus: CorpusStats,
    /// Document-frequency histogram over the whole dictionary (`None`
    /// for an empty dictionary).
    pub df_histogram: Option<ScoreHistogram>,
}

/// Buckets in the dictionary document-frequency histogram.
const DF_HISTOGRAM_BUCKETS: usize = 16;

impl PlanStats {
    /// Snapshot statistics for the loaded corpus.
    pub fn gather(store: &Store, index: &dyn IndexReader) -> Self {
        let dfs: Vec<f64> = index.doc_frequencies().into_iter().map(f64::from).collect();
        let df_histogram = if dfs.is_empty() {
            None
        } else {
            Some(ScoreHistogram::build(dfs, DF_HISTOGRAM_BUCKETS))
        };
        PlanStats {
            corpus: CorpusStats::gather(store, index),
            df_histogram,
        }
    }

    /// Per-query inputs from this snapshot (term lookups still hit the
    /// index — posting-list headers are O(1) per term).
    pub fn inputs<S: AsRef<str>>(&self, index: &dyn IndexReader, terms: &[S]) -> PlanInputs {
        PlanInputs {
            corpus: self.corpus.clone(),
            terms: terms
                .iter()
                .map(|t| TermStats::lookup(index, t.as_ref()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tix_index::InvertedIndex;

    fn fixture() -> (Store, InvertedIndex) {
        let mut store = Store::new();
        store
            .load_str(
                "a.xml",
                "<article><sec><p>rust xml database</p></sec>\
                 <sec><p>xml and more xml</p></sec></article>",
            )
            .unwrap();
        store.load_str("b.xml", "<note>rust</note>").unwrap();
        let index = InvertedIndex::build(&store);
        (store, index)
    }

    #[test]
    fn corpus_stats_are_integer_exact() {
        let (store, index) = fixture();
        let corpus = CorpusStats::gather(&store, &index);
        assert_eq!(corpus.documents, 2);
        // article, sec, sec, p, p, note.
        assert_eq!(corpus.elements, 6);
        // + 3 text nodes.
        assert_eq!(corpus.total_nodes, 9);
        assert_eq!(corpus.total_tokens, index.total_tokens());
        // Depths: article 0, sec 1, sec 1, p 2, p 2, texts 3,3, note 0,
        // text 1 → level_sum 13, avg 13000/9 = 1444.
        assert_eq!(corpus.avg_depth_milli, 1444);
        // (9 - 2) * 1000 / 6 = 1166.
        assert_eq!(corpus.avg_children_milli, 1166);
    }

    #[test]
    fn term_stats_lookup_known_and_unknown() {
        let (_store, index) = fixture();
        let xml = TermStats::lookup(&index, "xml");
        assert_eq!(xml.collection_frequency, 3);
        assert_eq!(xml.document_frequency, 1);
        assert_eq!(xml.node_frequency, 2);
        let nope = TermStats::lookup(&index, "nope");
        assert_eq!(nope.collection_frequency, 0);
        assert_eq!(nope.document_frequency, 0);
        assert_eq!(nope.node_frequency, 0);
    }

    #[test]
    fn plan_inputs_aggregates() {
        let (store, index) = fixture();
        let inputs = PlanInputs::gather(&store, &index, &["xml", "rust"]);
        assert_eq!(inputs.total_postings(), 3 + 2);
        // xml df=1, rust df=2 → Σ=3 clamped to 2 documents.
        assert_eq!(inputs.docs_union_bound(), 2);
    }

    #[test]
    fn plan_stats_snapshot_matches_direct_gather() {
        let (store, index) = fixture();
        let snap = PlanStats::gather(&store, &index);
        let inputs = snap.inputs(&index, &["xml"]);
        assert_eq!(inputs, PlanInputs::gather(&store, &index, &["xml"]));
        let hist = snap.df_histogram.as_ref().unwrap();
        assert_eq!(hist.count(), index.term_count());
    }

    #[test]
    fn empty_dictionary_has_no_histogram() {
        let store = Store::new();
        let index = InvertedIndex::build(&store);
        let snap = PlanStats::gather(&store, &index);
        assert!(snap.df_histogram.is_none());
        assert_eq!(snap.corpus.avg_depth_milli, 0);
        assert_eq!(snap.corpus.avg_children_milli, 0);
    }
}
