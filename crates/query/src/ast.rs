//! Abstract syntax of the extended-XQuery dialect.

/// A step in a path expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// `//tag` — descendant element with this tag.
    Descendant(String),
    /// `/tag` — child element with this tag.
    Child(String),
    /// `/descendant-or-self::*` — the `ad*` unit-of-retrieval step.
    DescendantOrSelfAny,
    /// `[/a/b/text() = "v"]` — structural predicate on the preceding step:
    /// a child chain whose text content equals the value.
    Predicate {
        /// Tags along the predicate's child chain.
        path: Vec<String>,
        /// Required text content.
        equals: String,
    },
    /// `[@name = "v"]` — attribute predicate on the preceding step.
    AttrPredicate {
        /// Attribute name.
        name: String,
        /// Required attribute value.
        equals: String,
    },
}

/// A rooted path: `document("name.xml") step*`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathExpr {
    /// The document name given to `document(...)`.
    pub document: String,
    /// The steps after the document node.
    pub steps: Vec<Step>,
}

/// `For $var in path`.
#[derive(Debug, Clone, PartialEq)]
pub struct ForClause {
    /// The bound variable (without the `$`).
    pub var: String,
    /// Its binding path.
    pub path: PathExpr,
}

/// A `Score` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum ScoreClause {
    /// `Score $var using ScoreFoo($var, {primary…}, {secondary…})`.
    Foo {
        /// The scored variable.
        var: String,
        /// Primary phrases (weight 0.8).
        primary: Vec<String>,
        /// Secondary phrases (weight 0.6).
        secondary: Vec<String>,
    },
    /// `Score $out using ScoreSim($left/tag, $right/tag)` — a scored join
    /// condition between two `For` sources.
    Sim {
        /// Variable receiving the join score.
        out: String,
        /// Left source variable.
        left_var: String,
        /// Child tag of the left variable compared.
        left_child: String,
        /// Right source variable.
        right_var: String,
        /// Child tag of the right variable compared.
        right_child: String,
    },
    /// `Score $out using ScoreBar($join, $scored)` — combine a join score
    /// with an IR score (the output tree's root score).
    Bar {
        /// Variable receiving the combined score.
        out: String,
        /// The join-score variable.
        join: String,
        /// The IR-scored variable.
        scored: String,
    },
}

/// `Pick $var using PickFoo($var[, threshold, fraction])`.
#[derive(Debug, Clone, PartialEq)]
pub struct PickClause {
    /// The picked variable.
    pub var: String,
    /// Relevance threshold (default 0.8, the paper's value).
    pub threshold: f64,
    /// Required relevant-children fraction (default 0.5).
    pub fraction: f64,
}

/// `Threshold $var/@score > value [stop after k]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdClause {
    /// The thresholded variable.
    pub var: String,
    /// Exclusive minimum score.
    pub min_score: f64,
    /// Optional result-count cap.
    pub stop_after: Option<usize>,
}

/// A complete query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Query {
    /// The `For` clauses, in order (two or more form a product/join).
    pub fors: Vec<ForClause>,
    /// The `Score` clauses, in order.
    pub scores: Vec<ScoreClause>,
    /// The `Pick` clauses.
    pub picks: Vec<PickClause>,
    /// `Return $var` — which variable's bindings become result items
    /// (defaults to the first `For` variable).
    pub ret: Option<String>,
    /// `Sortby(score)`.
    pub sortby_score: bool,
    /// The `Threshold` clause.
    pub threshold: Option<ThresholdClause>,
}

impl Query {
    /// The variable whose bindings are returned.
    pub fn return_var(&self) -> Option<&str> {
        self.ret
            .as_deref()
            .or_else(|| self.fors.first().map(|f| f.var.as_str()))
    }
}

impl std::fmt::Display for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Step::Descendant(tag) => write!(f, "//{tag}"),
            Step::Child(tag) => write!(f, "/{tag}"),
            Step::DescendantOrSelfAny => write!(f, "/descendant-or-self::*"),
            Step::Predicate { path, equals } => {
                write!(f, "[")?;
                for tag in path {
                    write!(f, "/{tag}")?;
                }
                write!(f, "/text()=\"{equals}\"]")
            }
            Step::AttrPredicate { name, equals } => {
                write!(f, "[@{name}=\"{equals}\"]")
            }
        }
    }
}

impl std::fmt::Display for PathExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "document(\"{}\")", self.document)?;
        for step in &self.steps {
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

fn fmt_phrases(f: &mut std::fmt::Formatter<'_>, phrases: &[String]) -> std::fmt::Result {
    write!(f, "{{")?;
    for (i, p) in phrases.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "\"{p}\"")?;
    }
    write!(f, "}}")
}

impl std::fmt::Display for ScoreClause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScoreClause::Foo {
                var,
                primary,
                secondary,
            } => {
                write!(f, "Score ${var} using ScoreFoo(${var}, ")?;
                fmt_phrases(f, primary)?;
                write!(f, ", ")?;
                fmt_phrases(f, secondary)?;
                write!(f, ")")
            }
            ScoreClause::Sim {
                out,
                left_var,
                left_child,
                right_var,
                right_child,
            } => write!(
                f,
                "Score ${out} using ScoreSim(${left_var}/{left_child}, ${right_var}/{right_child})"
            ),
            ScoreClause::Bar { out, join, scored } => {
                write!(f, "Score ${out} using ScoreBar(${join}, ${scored})")
            }
        }
    }
}

impl std::fmt::Display for Query {
    /// Canonical dialect text: `parse(query.to_string())` reproduces the
    /// AST (property-tested in `tests/roundtrip.rs`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for fc in &self.fors {
            writeln!(f, "For ${} in {}", fc.var, fc.path)?;
        }
        for sc in &self.scores {
            writeln!(f, "{sc}")?;
        }
        for pc in &self.picks {
            writeln!(
                f,
                "Pick ${} using PickFoo(${}, {}, {})",
                pc.var, pc.var, pc.threshold, pc.fraction
            )?;
        }
        if let Some(ret) = &self.ret {
            writeln!(f, "Return ${ret}")?;
        }
        if self.sortby_score {
            writeln!(f, "Sortby(score)")?;
        }
        if let Some(t) = &self.threshold {
            write!(f, "Threshold ${}/@score > {}", t.var, t.min_score)?;
            if let Some(k) = t.stop_after {
                write!(f, " stop after {k}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}
