//! Compile the AST onto the TIX algebra and evaluate it.

use std::fmt;
use std::sync::Arc;

use tix_core::ops;
use tix_core::pattern::{
    Agg, EdgeKind, PatternNodeId, PatternTree, Predicate, ScoreInput, ScoreRule,
};
use tix_core::scoring::paper::{score_bar_combiner, ScoreFoo, ScoreSim};
use tix_core::scoring::ScoreContext;
use tix_core::{Collection, ScoredTree};
use tix_store::{NodeRef, Store};

use crate::ast::{ForClause, Query, ScoreClause, Step, ThresholdClause};
use crate::parser::{parse, ParseError};

/// Query execution failure.
#[derive(Debug)]
pub enum QueryError {
    /// The text did not parse.
    Parse(ParseError),
    /// `document("…")` named a document that is not loaded.
    UnknownDocument(String),
    /// The query uses a combination outside the supported dialect.
    Unsupported(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::UnknownDocument(d) => write!(f, "document {d:?} is not loaded"),
            QueryError::Unsupported(what) => write!(f, "unsupported query: {what}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}

/// One answer of a query, rendered the way the paper's `Return` clause
/// does: `<result><score>…</score>{$a}</result>`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultItem {
    /// The returned node (None for a synthesized join root).
    pub node: Option<NodeRef>,
    /// The node's tag (None for text nodes / synthetic roots).
    pub tag: Option<String>,
    /// The node's score, if the query scored it.
    pub score: Option<f64>,
    /// The rendered `<result>` element.
    pub xml: String,
}

/// Parse and evaluate a query text against a store.
pub fn run_query(store: &Store, text: &str) -> Result<Vec<ResultItem>, QueryError> {
    run(store, &parse(text)?)
}

/// Evaluate a parsed query.
pub fn run(store: &Store, query: &Query) -> Result<Vec<ResultItem>, QueryError> {
    match query.fors.len() {
        1 => eval_single(store, query),
        2 => eval_join(store, query),
        n => Err(QueryError::Unsupported(format!(
            "{n} For clauses (the dialect supports 1, or 2 for a join)"
        ))),
    }
}

/// Pattern compiled from one `For` clause.
struct CompiledFor {
    pattern: PatternTree,
    /// The pattern node the For variable binds to.
    var_node: PatternNodeId,
    /// The pattern root.
    root_node: PatternNodeId,
    /// The document collection to match against.
    input: Collection,
}

fn compile_for(
    store: &Store,
    clause: &ForClause,
    first_id: u32,
) -> Result<CompiledFor, QueryError> {
    let input = Collection::document(store, &clause.path.document)
        .ok_or_else(|| QueryError::UnknownDocument(clause.path.document.clone()))?;
    let mut pattern = PatternTree::with_first_id(first_id);
    let mut current: Option<PatternNodeId> = None;
    let mut root_node: Option<PatternNodeId> = None;
    let mut compiled_attr_constraints: Vec<(PatternNodeId, String, String)> = Vec::new();
    for step in &clause.path.steps {
        match step {
            Step::Descendant(tag) | Step::Child(tag) => {
                // A leading `/tag` behaves like `//tag` (the document node
                // is the scope root); an inner `/tag` is a pc edge.
                let next = match current {
                    None => pattern.add_root(Predicate::tag(tag)),
                    Some(parent) => {
                        let edge = if matches!(step, Step::Child(_)) {
                            EdgeKind::Child
                        } else {
                            EdgeKind::Descendant
                        };
                        pattern.add_child(parent, edge, Predicate::tag(tag))
                    }
                };
                if root_node.is_none() {
                    root_node = Some(next);
                }
                current = Some(next);
            }
            Step::DescendantOrSelfAny => {
                let parent = current.ok_or_else(|| {
                    QueryError::Unsupported("descendant-or-self::* as the first step".to_string())
                })?;
                let next = pattern.add_child(parent, EdgeKind::SelfOrDescendant, Predicate::True);
                current = Some(next);
            }
            Step::AttrPredicate { name, equals } => {
                // Attribute predicates constrain the anchor node itself;
                // the matcher has no "refine existing node" operation, so
                // the constraint is attached as an extra pattern child is
                // not possible — instead rebuild is avoided by noting the
                // anchor and strengthening its predicate in place.
                let anchor = current.ok_or_else(|| {
                    QueryError::Unsupported("attribute predicate before any step".to_string())
                })?;
                compiled_attr_constraints.push((anchor, name.clone(), equals.clone()));
            }
            Step::Predicate { path, equals } => {
                let anchor = current.ok_or_else(|| {
                    QueryError::Unsupported("predicate before any step".to_string())
                })?;
                let mut cursor = anchor;
                for (i, tag) in path.iter().enumerate() {
                    let predicate = if i + 1 == path.len() {
                        Predicate::And(vec![Predicate::tag(tag), Predicate::content_eq(equals)])
                    } else {
                        Predicate::tag(tag)
                    };
                    cursor = pattern.add_child(cursor, EdgeKind::Child, predicate);
                }
                // `current` stays on the anchor: the predicate constrains,
                // it does not move the binding.
            }
        }
    }
    let var_node = current
        .ok_or_else(|| QueryError::Unsupported("a For path needs at least one step".to_string()))?;
    // `root_node` is set alongside the first step that sets `current`, so
    // it is Some whenever `current` is — but report, don't assert.
    let root_node = root_node
        .ok_or_else(|| QueryError::Unsupported("a For path needs at least one step".to_string()))?;
    pattern.strengthen(&compiled_attr_constraints);
    Ok(CompiledFor {
        pattern,
        var_node,
        root_node,
        input,
    })
}

/// Attach a `Score … using ScoreFoo` clause to a compiled pattern.
fn attach_score_foo(compiled: &mut CompiledFor, primary: &[String], secondary: &[String]) {
    let scorer = Arc::new(ScoreFoo::new(primary.to_vec(), secondary.to_vec()));
    compiled.pattern.score_primary(compiled.var_node, scorer);
    if compiled.var_node != compiled.root_node {
        compiled
            .pattern
            .score_from_descendant(compiled.root_node, compiled.var_node);
    }
}

fn eval_single(store: &Store, query: &Query) -> Result<Vec<ResultItem>, QueryError> {
    let Some(clause) = query.fors.first() else {
        return Err(QueryError::Unsupported(
            "eval_single requires a For clause".to_string(),
        ));
    };
    let mut compiled = compile_for(store, clause, 1)?;
    for score in &query.scores {
        match score {
            ScoreClause::Foo {
                var,
                primary,
                secondary,
            } => {
                if var != &clause.var {
                    return Err(QueryError::Unsupported(format!(
                        "Score on ${var}, which is not a For variable"
                    )));
                }
                attach_score_foo(&mut compiled, primary, secondary);
            }
            other => {
                return Err(QueryError::Unsupported(format!(
                    "{other:?} requires two For clauses"
                )))
            }
        }
    }
    let ctx = ScoreContext::new(store);
    let pl = [compiled.root_node, compiled.var_node];
    let mut result = ops::project(store, &compiled.input, &compiled.pattern, &pl);

    for pick in &query.picks {
        if pick.var != clause.var {
            return Err(QueryError::Unsupported(format!(
                "Pick on ${}, which is not the For variable",
                pick.var
            )));
        }
        let criterion = ops::FractionPick {
            relevance_threshold: pick.threshold,
            fraction: pick.fraction,
        };
        result = ops::pick(
            &ctx,
            &result,
            compiled.var_node,
            &criterion,
            compiled.pattern.rules(),
        );
    }

    // Enumerate the variable's bindings as result items.
    let mut items: Vec<ResultItem> = result
        .iter()
        .flat_map(|tree| {
            tree.bound(compiled.var_node)
                .filter_map(|(_, entry)| entry.source.stored().map(|n| (n, entry.score)))
                .collect::<Vec<_>>()
        })
        .map(|(node, score)| render_item(store, node, score))
        .collect();
    finalize(query, &clause.var, &mut items)?;
    Ok(items)
}

fn eval_join(store: &Store, query: &Query) -> Result<Vec<ResultItem>, QueryError> {
    let [left_for, right_for] = query.fors.as_slice() else {
        return Err(QueryError::Unsupported(
            "eval_join requires exactly two For clauses".to_string(),
        ));
    };
    let mut left = compile_for(store, left_for, 1)?;
    // Disjoint id space for the right side.
    let mut right = compile_for(store, right_for, 100)?;

    let mut sim: Option<(PatternNodeId, PatternNodeId, String)> = None; // (lchild, rchild, out var)
    let mut bar: Option<(String, String, String)> = None; // (out, join, scored)
    for score in &query.scores {
        match score {
            ScoreClause::Foo {
                var,
                primary,
                secondary,
            } => {
                let target = if var == &left_for.var {
                    &mut left
                } else if var == &right_for.var {
                    &mut right
                } else {
                    return Err(QueryError::Unsupported(format!(
                        "Score on unknown variable ${var}"
                    )));
                };
                attach_score_foo(target, primary, secondary);
            }
            ScoreClause::Sim {
                out,
                left_var,
                left_child,
                right_var,
                right_child,
            } => {
                if left_var != &left_for.var || right_var != &right_for.var {
                    return Err(QueryError::Unsupported(
                        "ScoreSim arguments must be the two For variables in order".to_string(),
                    ));
                }
                let lchild = left.pattern.add_child(
                    left.var_node,
                    EdgeKind::Child,
                    Predicate::tag(left_child),
                );
                let rchild = right.pattern.add_child(
                    right.var_node,
                    EdgeKind::Child,
                    Predicate::tag(right_child),
                );
                sim = Some((lchild, rchild, out.clone()));
            }
            ScoreClause::Bar { out, join, scored } => {
                bar = Some((out.clone(), join.clone(), scored.clone()));
            }
        }
    }
    let (lchild, rchild, sim_out) =
        sim.ok_or_else(|| QueryError::Unsupported("a join needs a ScoreSim clause".to_string()))?;

    let ctx = ScoreContext::new(store);
    let left_coll = ops::select(store, &left.input, &left.pattern);
    let right_coll = ops::select(store, &right.input, &right.pattern);

    // Threshold on the join-score variable becomes the condition's
    // min_score (evaluated during the join, as in the paper's Query 3).
    let join_min = query
        .threshold
        .as_ref()
        .filter(|t| t.var == sim_out)
        .map(|t| t.min_score);

    let root_var = PatternNodeId(900);
    let join_score_var = PatternNodeId(901);
    let conditions = [ops::JoinCondition {
        left: lchild,
        right: rchild,
        scorer: Arc::new(ScoreSim),
        output: join_score_var,
        min_score: join_min,
    }];
    let mut root_rules: Vec<ScoreRule> = Vec::new();
    if let Some((_out, join, scored)) = &bar {
        if join != &sim_out {
            return Err(QueryError::Unsupported(format!(
                "ScoreBar's first argument ${join} must be the ScoreSim output ${sim_out}"
            )));
        }
        // lint:allow(no-float-eq): String comparison of variable names
        let scored_node = if scored == &left_for.var {
            left.var_node
        // lint:allow(no-float-eq): String comparison of variable names
        } else if scored == &right_for.var {
            right.var_node
        } else {
            return Err(QueryError::Unsupported(format!(
                "ScoreBar's second argument ${scored} must be a For variable"
            )));
        };
        root_rules.push(ScoreRule::Combined {
            node: root_var,
            inputs: vec![
                ScoreInput::Aux(join_score_var),
                ScoreInput::Var(scored_node, Agg::Max),
            ],
            combine: score_bar_combiner(),
        });
    }
    let joined = ops::join(
        &ctx,
        &left_coll,
        &right_coll,
        &conditions,
        root_var,
        &root_rules,
    );

    let mut items: Vec<ResultItem> = joined.iter().map(|t| render_join_item(store, t)).collect();
    // The root score variable for threshold/sort purposes is ScoreBar's out
    // (or the sim output, already folded in as min_score).
    let score_var = bar
        .as_ref()
        .map(|(out, _, _)| out.clone())
        .unwrap_or(sim_out);
    finalize(query, &score_var, &mut items)?;
    Ok(items)
}

/// Apply Threshold / Sortby to rendered items.
fn finalize(query: &Query, score_var: &str, items: &mut Vec<ResultItem>) -> Result<(), QueryError> {
    if let Some(ThresholdClause {
        var,
        min_score,
        stop_after,
    }) = &query.threshold
    {
        // A threshold on the join-score variable was already applied inside
        // the join; only apply here when it names the result variable.
        // lint:allow(no-float-eq): String comparison of variable names
        if var == score_var || Some(var.as_str()) == query.return_var() {
            items.retain(|item| item.score.is_some_and(|s| s > *min_score));
            if let Some(k) = stop_after {
                sort_items(items);
                items.truncate(*k);
            }
        }
    }
    if query.sortby_score {
        sort_items(items);
    }
    Ok(())
}

fn sort_items(items: &mut [ResultItem]) {
    items.sort_by(|a, b| match (a.score, b.score) {
        (Some(x), Some(y)) => y.partial_cmp(&x).unwrap_or(std::cmp::Ordering::Equal),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => std::cmp::Ordering::Equal,
    });
}

fn render_item(store: &Store, node: NodeRef, score: Option<f64>) -> ResultItem {
    let body = store.subtree_xml(node);
    let xml = match score {
        Some(s) => format!("<result><score>{s}</score>{body}</result>"),
        None => format!("<result>{body}</result>"),
    };
    ResultItem {
        node: Some(node),
        tag: store.tag_name(node).map(str::to_string),
        score,
        xml,
    }
}

fn render_join_item(store: &Store, tree: &ScoredTree) -> ResultItem {
    let score = tree.score();
    let mut body = String::new();
    // Render the subtrees of the synthetic root's direct children.
    for (i, entry) in tree.entries().iter().enumerate() {
        if entry.parent == Some(0) && i != 0 {
            if let Some(node) = entry.source.stored() {
                body.push_str(&store.subtree_xml(node));
            }
        }
    }
    let xml = match score {
        Some(s) => format!("<tix_prod_root><score>{s}</score>{body}</tix_prod_root>"),
        None => format!("<tix_prod_root>{body}</tix_prod_root>"),
    };
    ResultItem {
        node: None,
        tag: Some("tix_prod_root".to_string()),
        score,
        xml,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_store() -> Store {
        let mut store = Store::new();
        store
            .load_str(
                "articles.xml",
                "<article><article-title>Internet Technologies</article-title>\
                 <author><sname>Doe</sname></author>\
                 <chapter><p>all about the search engine</p>\
                 <p>unrelated paragraph</p></chapter></article>",
            )
            .unwrap();
        store
            .load_str(
                "reviews.xml",
                r#"<reviews><review id="1"><title>Internet Technologies</title><rating>5</rating></review><review id="2"><title>Gardening</title><rating>3</rating></review></reviews>"#,
            )
            .unwrap();
        store
    }

    #[test]
    fn query1_scoring_and_threshold() {
        let store = fig1_store();
        let items = run_query(
            &store,
            r#"
            For $a in document("articles.xml")//article/descendant-or-self::*
            Score $a using ScoreFoo($a, {"search engine"}, {"internet"})
            Return $a
            Sortby(score)
            Threshold $a/@score > 0.7
            "#,
        )
        .unwrap();
        assert!(!items.is_empty());
        // Best item: the article (0.8 + 0.6 = 1.4).
        assert_eq!(items[0].tag.as_deref(), Some("article"));
        assert!((items[0].score.unwrap() - 1.4).abs() < 1e-9);
        assert!(items.iter().all(|i| i.score.unwrap() > 0.7));
        assert!(items[0].xml.starts_with("<result><score>"));
    }

    #[test]
    fn query2_author_predicate() {
        let store = fig1_store();
        let query = r#"
            For $a := document("articles.xml")//article[/author/sname/text()="Doe"]/descendant-or-self::*
            Score $a using ScoreFoo($a, {"search engine"}, {})
            Sortby(score)
            Threshold $a/@score > 0.5
        "#;
        let items = run_query(&store, query).unwrap();
        assert!(!items.is_empty());
        // Same query against a non-matching author returns nothing.
        let none = run_query(&store, &query.replace("Doe", "Smith")).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn pick_eliminates_redundancy() {
        let store = fig1_store();
        let items = run_query(
            &store,
            r#"
            For $a in document("articles.xml")//article/descendant-or-self::*
            Score $a using ScoreFoo($a, {"search engine"}, {})
            Pick $a using PickFoo($a)
            Sortby(score)
            "#,
        )
        .unwrap();
        // Parent/child redundancy elimination: no returned node is the
        // *direct* parent of another returned node. (Non-adjacent
        // ancestor/descendant pairs are allowed — the paper's Fig. 8
        // returns both chapter #a10 and its grandchild #a18.)
        for a in &items {
            for b in &items {
                if let (Some(na), Some(nb)) = (a.node, b.node) {
                    assert!(store.parent(nb) != Some(na), "{na} is parent of {nb}");
                }
            }
        }
        assert!(!items.is_empty());
    }

    #[test]
    fn query3_join() {
        let store = fig1_store();
        let items = run_query(
            &store,
            r#"
            For $a in document("articles.xml")//article
            For $b in document("reviews.xml")//review
            Score $a using ScoreFoo($a, {"search engine"}, {"internet", "information retrieval"})
            Score $j using ScoreSim($a/article-title, $b/title)
            Score $r using ScoreBar($j, $a)
            Threshold $j/@score > 1
            Sortby(score)
            "#,
        )
        .unwrap();
        // Only the "Internet Technologies" review passes simScore > 1.
        assert_eq!(items.len(), 1);
        let item = &items[0];
        assert_eq!(item.tag.as_deref(), Some("tix_prod_root"));
        // simScore 2 + article score (0.8 for "search engine" + 0.6 for
        // "internet" in the title) = 3.4.
        assert!((item.score.unwrap() - 3.4).abs() < 1e-9, "{:?}", item.score);
        assert!(item.xml.contains("<review id=\"1\">"));
        assert!(item.xml.contains("<article>"));
    }

    #[test]
    fn attribute_predicate_filters() {
        let store = fig1_store();
        let hit = run_query(
            &store,
            r#"For $a in document("reviews.xml")//review[@id="1"]/descendant-or-self::*
               Score $a using ScoreFoo($a, {"internet"}, {})
               Sortby(score)
               Threshold $a/@score > 0.5"#,
        )
        .unwrap();
        assert!(!hit.is_empty());
        // The other review has no "internet" in its title; with @id="2" the
        // same query returns nothing above threshold.
        let miss = run_query(
            &store,
            r#"For $a in document("reviews.xml")//review[@id="2"]/descendant-or-self::*
               Score $a using ScoreFoo($a, {"internet"}, {})
               Sortby(score)
               Threshold $a/@score > 0.5"#,
        )
        .unwrap();
        assert!(miss.is_empty());
    }

    #[test]
    fn unknown_document_errors() {
        let store = fig1_store();
        let err = run_query(&store, r#"For $a in document("nope.xml")//x"#).unwrap_err();
        assert!(matches!(err, QueryError::UnknownDocument(_)));
    }

    #[test]
    fn three_fors_unsupported() {
        let store = fig1_store();
        let err = run_query(
            &store,
            r#"
            For $a in document("articles.xml")//article
            For $b in document("articles.xml")//article
            For $c in document("articles.xml")//article
            "#,
        )
        .unwrap_err();
        assert!(matches!(err, QueryError::Unsupported(_)));
    }
}
