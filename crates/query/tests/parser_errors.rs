//! Error-path coverage for the dialect front end the planner sits on:
//! malformed `Threshold` clauses, broken paths, keyword case rules — plus
//! the lowering and EXPLAIN rendering edge cases those clauses feed.

use tix_query::{explain_query, parse, LogicalPlan, QueryError};

use tix_index::InvertedIndex;
use tix_store::Store;

const PREFIX: &str = r#"
    For $a in document("a.xml")//article/descendant-or-self::*
    Score $a using ScoreFoo($a, {"rust"}, {})
    Sortby(score)
"#;

fn with_threshold(clause: &str) -> String {
    format!("{PREFIX}\n{clause}")
}

fn fixture() -> (Store, InvertedIndex) {
    let mut store = Store::new();
    store
        .load_str("a.xml", "<article><p>rust text here</p></article>")
        .unwrap();
    let index = InvertedIndex::build(&store);
    (store, index)
}

#[test]
fn threshold_without_stop_after_is_valid_and_unbounded() {
    let q = parse(&with_threshold("Threshold $a/@score > 0.5")).unwrap();
    let t = q.threshold.as_ref().unwrap();
    assert_eq!(t.min_score, 0.5);
    assert_eq!(t.stop_after, None);
    // Lowering: no `stop after` means an unbounded budget — the planner
    // must never pick the pushdown (its cost saturates), but the value
    // filter survives.
    match LogicalPlan::from_query(&q).unwrap() {
        LogicalPlan::TermSearch(search) => {
            assert_eq!(search.k, usize::MAX);
            assert_eq!(search.min_score, Some(0.5));
        }
        other => panic!("unexpected lowering: {other:?}"),
    }
}

#[test]
fn threshold_stop_without_after_is_an_error() {
    let err = parse(&with_threshold("Threshold $a/@score > 0.5 stop 3"))
        .unwrap_err()
        .to_string();
    assert!(err.contains("after"), "{err}");
    let err = parse(&with_threshold("Threshold $a/@score > 0.5 stop after"))
        .unwrap_err()
        .to_string();
    assert!(err.contains("number"), "{err}");
    let err = parse(&with_threshold("Threshold $a/@score > 0.5 stop after soon"))
        .unwrap_err()
        .to_string();
    assert!(err.contains("number"), "{err}");
}

#[test]
fn threshold_malformed_paths_are_errors() {
    for clause in [
        "Threshold $a @score > 1",       // missing slash
        "Threshold $a/score > 1",        // missing @
        "Threshold $a/@relevance > 1",   // wrong attribute
        "Threshold $a/@score 1",         // missing comparator
        "Threshold $a/@score > high",    // non-numeric bound
        "Threshold articles/@score > 1", // not a variable
    ] {
        assert!(
            parse(&with_threshold(clause)).is_err(),
            "{clause:?} should not parse"
        );
    }
}

#[test]
fn keywords_are_case_insensitive() {
    let q = parse(
        r#"
        FOR $a IN document("a.xml")//article/descendant-or-self::*
        score $a USING scorefoo($a, {"rust"}, {})
        SORTBY(score)
        threshold $a/@score > 0.25 STOP AFTER 3
    "#,
    )
    .unwrap();
    let t = q.threshold.as_ref().unwrap();
    assert_eq!(t.stop_after, Some(3));
    match LogicalPlan::from_query(&q).unwrap() {
        LogicalPlan::TermSearch(search) => {
            assert_eq!(search.k, 3);
            assert_eq!(search.min_score, Some(0.25));
        }
        other => panic!("unexpected lowering: {other:?}"),
    }
}

#[test]
fn explain_renders_unbounded_and_stop_after_budgets() {
    let (store, index) = fixture();
    let unbounded =
        explain_query(&store, &index, &with_threshold("Threshold $a/@score > 0.5")).unwrap();
    assert!(unbounded.contains("k=unbounded"), "{unbounded}");
    let pushdown_chosen = unbounded
        .lines()
        .any(|l| l.contains("+pushdown") && l.contains("<- chosen"));
    assert!(
        !pushdown_chosen,
        "unbounded budget must not choose the pushdown:\n{unbounded}"
    );
    assert!(unbounded.contains("threshold: score > 0.5"), "{unbounded}");

    let bounded = explain_query(
        &store,
        &index,
        &with_threshold("Threshold $a/@score > 0.5 stop after 2"),
    )
    .unwrap();
    assert!(bounded.contains("k=2"), "{bounded}");
}

#[test]
fn explain_propagates_front_end_errors() {
    let (store, index) = fixture();
    // Parse error.
    assert!(matches!(
        explain_query(&store, &index, "For broken $"),
        Err(QueryError::Parse(_))
    ));
    // Outside the plannable dialect: a scoreless query has no terms to
    // cost.
    let scoreless = r#"
        For $a in document("a.xml")//article/descendant-or-self::*
        Return $a
    "#;
    assert!(matches!(
        explain_query(&store, &index, scoreless),
        Err(QueryError::Unsupported(_))
    ));
    // A two-source join is evaluated by the algebra, not the term
    // planner.
    let join = r#"
        For $a in document("a.xml")//article
        For $b in document("a.xml")//article
        Score $j using ScoreSim($a/p, $b/p)
        Threshold $j/@score > 1
    "#;
    assert!(matches!(
        explain_query(&store, &index, join),
        Err(QueryError::Unsupported(_))
    ));
}

#[test]
fn unknown_terms_still_plan_and_explain() {
    // Zero-frequency terms are a legal (empty) plan, not an error: the
    // cost table degenerates but stays deterministic.
    let (store, index) = fixture();
    let text = explain_query(
        &store,
        &index,
        r#"
        For $a in document("a.xml")//article/descendant-or-self::*
        Score $a using ScoreFoo($a, {"nosuchterm"}, {})
        Sortby(score)
        Threshold $a/@score > 0.1 stop after 5
    "#,
    )
    .unwrap();
    assert!(text.contains("cf=0 df=0 nf=0"), "{text}");
    assert!(text.contains("chosen:"), "{text}");
}
