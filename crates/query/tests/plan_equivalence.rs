//! The planner's differential harness: on randomized corpus collections
//! and randomized queries, **every** physical plan the cost model can
//! emit is forced through [`tix_query::execute`] and must produce
//! **byte-identical** ranked output — same nodes, same order, same score
//! *bits* — at 1, 2, and 8 worker threads.
//!
//! This is the proof obligation behind the planner: cost-based choice is
//! only sound if the choice is unobservable in the results. Exact (not
//! epsilon) equality holds because every access method folds scores in
//! the same canonical node order, and the Threshold pushdown's early exit
//! is guarded by the §4.2 score-bound invariant (`max_score_bound` is an
//! upper bound on any unseen document's score).
//!
//! Case counts are deliberately low (corpus generation dominates);
//! `PROPTEST_CASES` scales them up for the CI soak run.

use proptest::prelude::*;
use tix_corpus::{CorpusSpec, Generator, PlantSpec};
use tix_exec::pick::PickParams;
use tix_exec::scored::ScoredNode;
use tix_index::InvertedIndex;
use tix_query::logical::{PhraseSearch, TermSearch};
use tix_query::{candidates, choose, execute, LogicalPlan, PlanInputs, Scoring};
use tix_store::Store;

/// A randomized collection: corpus shape, seed, and plant densities.
#[derive(Debug, Clone)]
struct Collection {
    articles: usize,
    seed: u64,
    alpha: usize,
    beta: usize,
    gamma: usize,
    adjacent: usize,
    cooccurring: usize,
}

fn collection_strategy() -> impl Strategy<Value = Collection> {
    (
        1usize..6,
        0u64..1 << 32,
        0usize..25,
        0usize..12,
        0usize..6,
        0usize..8,
        0usize..8,
    )
        .prop_map(
            |(articles, seed, alpha, beta, gamma, adjacent, cooccurring)| Collection {
                articles,
                seed,
                alpha,
                beta,
                gamma,
                adjacent,
                cooccurring,
            },
        )
}

/// A randomized term-search query over the planted + background
/// vocabulary: 1–3 terms, a scoring mode, an optional Pick stage, a
/// result budget (sometimes unbounded), and an optional min-score.
#[derive(Debug, Clone)]
struct RandomQuery {
    terms: Vec<String>,
    scoring: Scoring,
    pick: Option<PickParams>,
    k: usize,
    min_score: Option<f64>,
}

fn scoring_strategy() -> impl Strategy<Value = Scoring> {
    prop_oneof![
        Just(Scoring::SimpleUniform),
        Just(Scoring::SimpleWeighted(vec![0.8, 0.6, 0.4])),
        Just(Scoring::Complex),
        Just(Scoring::Idf),
    ]
}

fn query_strategy() -> impl Strategy<Value = RandomQuery> {
    const VOCABULARY: [&str; 6] = ["alpha", "beta", "gamma", "w0", "w1", "srch"];
    (
        (0usize..VOCABULARY.len(), 1usize..=3),
        scoring_strategy(),
        prop::option::of((0u32..30, 1u32..10)),
        prop_oneof![Just(usize::MAX), (1usize..20).boxed()],
        prop::option::of(0u32..40),
    )
        .prop_map(|((start, len), scoring, pick, k, min_tenths)| RandomQuery {
            // A wrapping window of 1–3 distinct terms from the vocabulary.
            terms: (0..len)
                .map(|i| VOCABULARY[(start + i) % VOCABULARY.len()].to_string())
                .collect(),
            scoring,
            pick: pick.map(|(t, f)| PickParams {
                relevance_threshold: t as f64 / 10.0,
                fraction: f as f64 / 10.0,
            }),
            k,
            min_score: min_tenths.map(|m| m as f64 / 10.0),
        })
}

fn build(c: &Collection) -> (Store, InvertedIndex) {
    let spec = CorpusSpec {
        articles: c.articles,
        seed: c.seed,
        ..CorpusSpec::tiny()
    };
    let plants = PlantSpec::default()
        .with_term("alpha", c.alpha)
        .with_term("beta", c.beta)
        .with_term("gamma", c.gamma)
        .with_phrase("srch", "engn", c.adjacent, c.cooccurring);
    let generator = Generator::new(spec, plants).expect("plants fit the tiny shape");
    let mut store = Store::new();
    generator.load_into(&mut store).expect("corpus loads");
    let index = InvertedIndex::build(&store);
    (store, index)
}

/// Bit-exact comparison: same nodes, same order, same score *bits*.
fn assert_identical(expected: &[ScoredNode], actual: &[ScoredNode], label: &str) {
    assert_eq!(
        expected.len(),
        actual.len(),
        "{label}: result count differs\nexpected={expected:?}\nactual={actual:?}"
    );
    for (e, a) in expected.iter().zip(actual) {
        assert_eq!(e.node, a.node, "{label}: node differs");
        assert_eq!(
            e.score.to_bits(),
            a.score.to_bits(),
            "{label}: score bits differ at {:?} ({} vs {})",
            e.node,
            e.score,
            a.score
        );
    }
}

/// Force every candidate plan for `logical` and assert each one is
/// byte-identical to the planner's own choice, at every thread count.
fn assert_all_plans_agree(store: &Store, index: &InvertedIndex, logical: &LogicalPlan) {
    let inputs = PlanInputs::gather(store, index, logical.terms());
    let choice = choose(logical, &inputs);
    let baseline = execute(store, index, logical, &choice.chosen.plan, 1, &|| false)
        .expect("never cancelled")
        .results;
    for candidate in candidates(logical, &inputs) {
        for threads in [1usize, 2, 8] {
            let run = execute(store, index, logical, &candidate.plan, threads, &|| false)
                .expect("never cancelled");
            assert_identical(
                &baseline,
                &run.results,
                &format!("{} @ {threads} threads", candidate.plan.label()),
            );
            assert!(
                run.postings_scanned <= run.postings_total,
                "{}: scanned {} > total {}",
                candidate.plan.label(),
                run.postings_scanned,
                run.postings_total
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_physical_plan_is_byte_identical(
        c in collection_strategy(),
        q in query_strategy(),
    ) {
        let (store, index) = build(&c);
        let logical = LogicalPlan::TermSearch(TermSearch {
            terms: q.terms.clone(),
            scoring: q.scoring.clone(),
            pick: q.pick,
            k: q.k,
            min_score: q.min_score,
        });
        assert_all_plans_agree(&store, &index, &logical);
    }

    #[test]
    fn phrase_plans_are_byte_identical(
        c in collection_strategy(),
        k in prop_oneof![Just(usize::MAX), (1usize..10).boxed()],
        min_tenths in prop::option::of(0u32..30),
    ) {
        let (store, index) = build(&c);
        // The planted phrase, its reversal, and a background bigram.
        for pair in [["srch", "engn"], ["engn", "srch"], ["w0", "w1"]] {
            let logical = LogicalPlan::Phrase(PhraseSearch {
                terms: pair.iter().map(|t| t.to_string()).collect(),
                k,
                min_score: min_tenths.map(|m| m as f64 / 10.0),
            });
            assert_all_plans_agree(&store, &index, &logical);
        }
    }

    #[test]
    fn pushdown_never_changes_results_under_tight_budgets(
        c in collection_strategy(),
        k in 1usize..4,
    ) {
        // The adversarial region for early exit: k far below the match
        // count, where a wrong bound would truncate or reorder. All four
        // scorings, with and without a min-score floor.
        let (store, index) = build(&c);
        for scoring in [
            Scoring::SimpleUniform,
            Scoring::SimpleWeighted(vec![0.9, 0.5]),
            Scoring::Complex,
            Scoring::Idf,
        ] {
            for min_score in [None, Some(0.0), Some(1.5)] {
                let logical = LogicalPlan::TermSearch(TermSearch {
                    terms: vec!["alpha".into(), "beta".into()],
                    scoring: scoring.clone(),
                    pick: None,
                    k,
                    min_score,
                });
                assert_all_plans_agree(&store, &index, &logical);
            }
        }
    }
}
