//! Golden EXPLAIN snapshots and plan-flip tests.
//!
//! * The paper's Figure 1 example database with the running
//!   `ScoreFoo("search engine" / "internet")` query must render a
//!   byte-exact EXPLAIN — statistics, every costed candidate, the chosen
//!   plan. Any cost-model change shows up here as a diff a reviewer can
//!   read.
//! * The EXPERIMENTS.md workload shapes (Table 3/4 term searches, the
//!   Table 5 phrases) are **fabricated** as [`PlanInputs`] — no corpus
//!   build — and must choose the access methods the paper's measurements
//!   justify.
//! * Perturbing one statistic at a time must flip the plan in the
//!   documented direction (tiny element count → Comp2, small `k` over a
//!   large corpus → Threshold pushdown, bushy elements under complex
//!   scoring → Enhanced TermJoin).

use tix_corpus::fig1;
use tix_index::InvertedIndex;
use tix_query::logical::{PhraseSearch, TermSearch};
use tix_query::stats::{CorpusStats, TermStats};
use tix_query::{choose, explain_query, LogicalPlan, PlanInputs, Scoring};

#[test]
fn fig1_query_explain_is_byte_exact() {
    let (store, _, _) = fig1::load().unwrap();
    let index = InvertedIndex::build(&store);
    let text = explain_query(
        &store,
        &index,
        r#"
        For $a in document("articles.xml")//article/descendant-or-self::*
        Score $a using ScoreFoo($a, {"search engine"}, {"internet"})
        Return $a
        Sortby(score)
        Threshold $a/@score > 0.5 stop after 10
    "#,
    )
    .unwrap();
    let expected = "\
explain: term-search terms=[\"search\", \"engine\", \"internet\"] scoring=simple-weighted k=10
  threshold: score > 0.5
statistics: documents=2 elements=37 nodes=62 tokens=112 avg_depth=2.532 avg_children=1.621
  term \"search\": cf=5 df=1 nf=5
  term \"engine\": cf=2 df=1 nf=2
  term \"internet\": cf=3 df=2 nf=3
candidates:
  term-join                    cost=86  <- chosen
  term-join+pushdown           cost=148
  generalized-meet             cost=161
  comp1                        cost=371
  comp2                        cost=177
chosen: term-join
";
    assert_eq!(text, expected);
}

/// The experiment corpus's shape at the paper's scale: ~10k articles of
/// nested sections (see EXPERIMENTS.md). Fabricated, not built.
fn paper_corpus() -> CorpusStats {
    CorpusStats {
        documents: 10_000,
        elements: 500_000,
        total_nodes: 1_200_000,
        distinct_tags: 80,
        max_depth: 8,
        avg_depth_milli: 4_500,
        avg_children_milli: 1_400,
        total_tokens: 5_000_000,
    }
}

fn term(name: &str, cf: u64, df: u64, nf: u64) -> TermStats {
    TermStats {
        term: name.to_string(),
        collection_frequency: cf,
        document_frequency: df,
        node_frequency: nf,
        max_doc_count: None,
    }
}

fn term_search(inputs_terms: &[TermStats], scoring: Scoring, k: usize) -> LogicalPlan {
    LogicalPlan::TermSearch(TermSearch {
        terms: inputs_terms.iter().map(|t| t.term.clone()).collect(),
        scoring,
        pick: None,
        k,
        min_score: None,
    })
}

#[test]
fn experiment_workloads_choose_the_measured_winners() {
    // Table 3's 2-term search (t3fix × t2f3000), unbounded: the paper's
    // Figure 12 measurement has TermJoin beating Comp1/Comp2/Meet.
    let corpus = paper_corpus();
    let table3 = PlanInputs {
        corpus: corpus.clone(),
        terms: vec![
            term("t3fix", 1_000, 900, 1_000),
            term("t2f3000", 3_000, 2_400, 3_000),
        ],
    };
    let logical = term_search(&table3.terms, Scoring::SimpleUniform, usize::MAX);
    let choice = choose(&logical, &table3);
    assert_eq!(choice.chosen.plan.label(), "term-join");

    // The same workload with `Threshold … stop after 10`: only ~3% of
    // documents can contain a query term, so the pushdown's early exit
    // is the planner's winner.
    let logical = term_search(&table3.terms, Scoring::SimpleUniform, 10);
    let choice = choose(&logical, &table3);
    assert_eq!(choice.chosen.plan.label(), "term-join+pushdown");

    // Table 4's 7-term search (every term at frequency 1500): still
    // TermJoin territory when unbounded.
    let table4 = PlanInputs {
        corpus: corpus.clone(),
        terms: (0..7)
            .map(|i| term(&format!("t4w{i}"), 1_500, 1_300, 1_500))
            .collect(),
    };
    let logical = term_search(&table4.terms, Scoring::SimpleUniform, usize::MAX);
    let choice = choose(&logical, &table4);
    assert_eq!(choice.chosen.plan.label(), "term-join");

    // Figure 13's complex scorer over the bushy experiment corpus: the
    // child-count probe beats per-node navigation — Enhanced TermJoin.
    let bushy = PlanInputs {
        corpus: CorpusStats {
            avg_children_milli: 50_000,
            ..corpus.clone()
        },
        terms: table3.terms.clone(),
    };
    let logical = term_search(&bushy.terms, Scoring::Complex, usize::MAX);
    let choice = choose(&logical, &bushy);
    assert_eq!(choice.chosen.plan.label(), "enhanced-term-join");

    // Table 5's phrases: PhraseFinder wins every row over Comp3.
    let table5 = PlanInputs {
        corpus,
        terms: vec![
            term("ph1", 2_000, 1_700, 2_000),
            term("ph2", 2_000, 1_700, 2_000),
        ],
    };
    let logical = LogicalPlan::Phrase(PhraseSearch {
        terms: vec!["ph1".into(), "ph2".into()],
        k: usize::MAX,
        min_score: None,
    });
    let choice = choose(&logical, &table5);
    assert_eq!(choice.chosen.plan.label(), "phrase-finder");
    assert_eq!(choice.candidates.len(), 2);
}

#[test]
fn perturbing_one_statistic_flips_the_plan() {
    let baseline = PlanInputs {
        corpus: paper_corpus(),
        terms: vec![term("a", 1_000, 900, 1_000), term("b", 3_000, 2_400, 3_000)],
    };
    let unbounded = term_search(&baseline.terms, Scoring::SimpleUniform, usize::MAX);
    assert_eq!(
        choose(&unbounded, &baseline).chosen.plan.label(),
        "term-join"
    );

    // Shrink the element count to a handful: Comp2's per-term scan of the
    // element list (t·E + F) undercuts the merge.
    let tiny_elements = PlanInputs {
        corpus: CorpusStats {
            elements: 50,
            total_nodes: 120,
            ..baseline.corpus.clone()
        },
        terms: baseline.terms.clone(),
    };
    assert_eq!(
        choose(&unbounded, &tiny_elements).chosen.plan.label(),
        "comp2"
    );

    // Bound the result budget: the same statistics now favor the
    // Threshold pushdown (early exit after ~k of ~3 300 matching docs).
    let bounded = term_search(&baseline.terms, Scoring::SimpleUniform, 10);
    assert_eq!(
        choose(&bounded, &baseline).chosen.plan.label(),
        "term-join+pushdown"
    );

    // Complex scoring flips on the fan-out statistic alone: skinny
    // elements navigate cheaply (plain TermJoin), bushy elements make the
    // child-count index pay (Enhanced TermJoin).
    let complex = term_search(&baseline.terms, Scoring::Complex, usize::MAX);
    let skinny = PlanInputs {
        corpus: CorpusStats {
            avg_children_milli: 500,
            ..baseline.corpus.clone()
        },
        terms: baseline.terms.clone(),
    };
    let bushy = PlanInputs {
        corpus: CorpusStats {
            avg_children_milli: 50_000,
            ..baseline.corpus.clone()
        },
        terms: baseline.terms.clone(),
    };
    assert_eq!(choose(&complex, &skinny).chosen.plan.label(), "term-join");
    assert_eq!(
        choose(&complex, &bushy).chosen.plan.label(),
        "enhanced-term-join"
    );

    // Every choice above is deterministic: repeated planning returns the
    // identical candidate table.
    let first = choose(&unbounded, &baseline);
    let second = choose(&unbounded, &baseline);
    assert_eq!(first.chosen.cost, second.chosen.cost);
    assert_eq!(first.candidates.len(), second.candidates.len());
    for (a, b) in first.candidates.iter().zip(&second.candidates) {
        assert_eq!(a.plan.label(), b.plan.label());
        assert_eq!(a.cost, b.cost);
    }
}
