//! Property test: pretty-printing a query AST and re-parsing it yields the
//! same AST — pinning the parser and printer to one grammar.

use proptest::prelude::*;
use tix_query::{
    parse, ForClause, PathExpr, PickClause, Query, ScoreClause, Step, ThresholdClause,
};

fn var_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,4}"
}

fn tag_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}"
}

fn phrase() -> impl Strategy<Value = String> {
    // Phrases are free text between quotes; exclude the quote itself.
    "[a-z]( [a-z]{1,6}){0,2}"
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    // First step always //tag; then optional predicate; then optional
    // child/descendant steps; optionally ending in descendant-or-self::*.
    (
        tag_name(),
        prop::option::of((prop::collection::vec(tag_name(), 1..3), phrase())),
        prop::option::of((tag_name(), phrase())),
        prop::collection::vec((any::<bool>(), tag_name()), 0..2),
        any::<bool>(),
    )
        .prop_map(|(first, pred, attr, inner, ad_star)| {
            let mut steps = vec![Step::Descendant(first)];
            if let Some((path, equals)) = pred {
                steps.push(Step::Predicate { path, equals });
            }
            if let Some((name, equals)) = attr {
                steps.push(Step::AttrPredicate { name, equals });
            }
            for (child, tag) in inner {
                steps.push(if child {
                    Step::Child(tag)
                } else {
                    Step::Descendant(tag)
                });
            }
            if ad_star {
                steps.push(Step::DescendantOrSelfAny);
            }
            steps
        })
}

fn query() -> impl Strategy<Value = Query> {
    (
        var_name(),
        "[a-z]{1,8}\\.xml",
        steps(),
        prop::option::of((
            prop::collection::vec(phrase(), 0..3),
            prop::collection::vec(phrase(), 0..3),
        )),
        prop::option::of((0u32..20, 1u32..10)),
        any::<bool>(),
        any::<bool>(),
        prop::option::of((0u32..100, prop::option::of(1usize..20))),
    )
        .prop_map(
            |(var, document, steps, score, pick, ret, sortby, threshold)| {
                let mut q = Query {
                    fors: vec![ForClause {
                        var: var.clone(),
                        path: PathExpr { document, steps },
                    }],
                    ..Query::default()
                };
                if let Some((primary, secondary)) = score {
                    q.scores.push(ScoreClause::Foo {
                        var: var.clone(),
                        primary,
                        secondary,
                    });
                }
                if let Some((t, f)) = pick {
                    // Use dyadic fractions so the f64 → text → f64 trip is
                    // exact.
                    q.picks.push(PickClause {
                        var: var.clone(),
                        threshold: t as f64 / 16.0,
                        fraction: f as f64 / 16.0,
                    });
                }
                if ret {
                    q.ret = Some(var.clone());
                }
                q.sortby_score = sortby;
                if let Some((min, stop_after)) = threshold {
                    q.threshold = Some(ThresholdClause {
                        var,
                        min_score: min as f64 / 4.0,
                        stop_after,
                    });
                }
                q
            },
        )
}

proptest! {
    #[test]
    fn print_parse_roundtrip(q in query()) {
        let printed = q.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse:\n{printed}\n{e}"));
        prop_assert_eq!(q, reparsed, "printed form:\n{}", printed);
    }

    #[test]
    fn parser_never_panics(text in "[ -~\\n]{0,160}") {
        let _ = parse(&text);
    }
}
