//! End-to-end serving tests over raw `TcpStream`s: byte-identical results
//! vs. direct `Database` calls, cache behavior across reloads, deadline
//! expiry, bounded-admission saturation, and graceful shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use tix::exec::pick::PickParams;
use tix::{normalize_query, Database};
use tix_server::{render, Server, ServerConfig};

const DOCS: &[(&str, &str)] = &[
    (
        "a.xml",
        "<article><sec><p>rust xml database systems</p></sec>\
         <sec><p>cooking with rust the metal</p></sec></article>",
    ),
    (
        "b.xml",
        "<article><sec><title>xml storage</title><p>rust engines for xml</p></sec>\
         <sec><p>unrelated text here</p></sec></article>",
    ),
    (
        "c.xml",
        "<review><p>the database was fast</p><p>rust xml database again</p></review>",
    ),
];

fn corpus_db() -> Database {
    let mut db = Database::new();
    for (name, xml) in DOCS {
        db.load(name, xml).unwrap();
    }
    db.build_index();
    db
}

fn start(config: ServerConfig) -> Server {
    Server::start(corpus_db(), config).unwrap()
}

/// Issue one raw HTTP request and return `(status, headers, body)`.
fn raw_request(server: &Server, request: &str) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    read_response(&mut stream)
}

fn read_response(stream: &mut TcpStream) -> (u16, String, Vec<u8>) {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header/body separator");
    let headers = String::from_utf8_lossy(&raw[..split]).into_owned();
    let body = raw[split + 4..].to_vec();
    let status: u16 = headers
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, headers, body)
}

/// Poll the live metrics document until `needle` appears (10 s cap).
fn wait_for_metric(server: &Server, needle: &str) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let metrics = server.metrics_json();
        if metrics.contains(needle) {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for {needle} in {metrics}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn get(server: &Server, target: &str) -> (u16, String, Vec<u8>) {
    raw_request(server, &format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post(server: &Server, target: &str, body: &str) -> (u16, String, Vec<u8>) {
    raw_request(
        server,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn health_reports_corpus() {
    let server = start(ServerConfig::default());
    let (status, _, body) = get(&server, "/health");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("\"status\":\"ok\""), "{text}");
    assert!(text.contains(&format!("\"docs\":{}", DOCS.len())), "{text}");
    server.shutdown();
}

#[test]
fn search_is_byte_identical_to_direct_database_search() {
    let server = start(ServerConfig::default());
    let reference = corpus_db();
    let pick = PickParams {
        relevance_threshold: 1.0,
        fraction: 0.5,
    };
    let terms = normalize_query(&["rust", "xml"]);
    let expected_results = reference.search(&["rust", "xml"], pick, 5);
    let expected = render::search_body(reference.store(), &terms, pick, 5, &expected_results);

    let (status, _, body) = get(&server, "/search?q=rust+xml&k=5&threshold=1.0&fraction=0.5");
    assert_eq!(status, 200);
    assert_eq!(
        body,
        expected.as_bytes(),
        "served bytes differ from direct search"
    );
    assert!(!expected_results.is_empty(), "fixture should produce hits");
    server.shutdown();
}

#[test]
fn phrase_is_byte_identical_to_direct_find_phrase() {
    let server = start(ServerConfig::default());
    let reference = corpus_db();
    let terms = normalize_query(&["xml", "database"]);
    let matches = reference.find_phrase(&["xml", "database"]);
    let expected = render::phrase_body(reference.store(), &terms, &matches);

    let (status, _, body) = get(&server, "/phrase?q=xml+database");
    assert_eq!(status, 200);
    assert_eq!(body, expected.as_bytes());
    assert!(!matches.is_empty(), "fixture should contain the phrase");
    server.shutdown();
}

#[test]
fn batch_matches_per_query_searches() {
    let server = start(ServerConfig::default());
    let reference = corpus_db();
    let pick = PickParams {
        relevance_threshold: 1.0,
        fraction: 0.5,
    };
    let raw_queries = ["rust", "xml database", "nosuchterm", "rust"];
    let queries: Vec<Vec<String>> = raw_queries
        .iter()
        .map(|q| {
            let split: Vec<&str> = q.split_whitespace().collect();
            normalize_query(&split)
        })
        .collect();
    let per_query: Vec<_> = queries
        .iter()
        .map(|terms| {
            let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
            reference.search(&refs, pick, 5)
        })
        .collect();
    let expected = render::batch_body(reference.store(), &queries, pick, 5, &per_query);

    let body_text = raw_queries.join("\n");
    let (status, _, body) = post(
        &server,
        "/search/batch?k=5&threshold=1.0&fraction=0.5",
        &body_text,
    );
    assert_eq!(status, 200);
    assert_eq!(body, expected.as_bytes());
    server.shutdown();
}

#[test]
fn query_endpoint_runs_the_dialect() {
    let server = start(ServerConfig::default());
    let query = r#"
        For $a in document("a.xml")//article/descendant-or-self::*
        Score $a using ScoreFoo($a, {"xml database"}, {})
        Sortby(score)
        Threshold $a/@score > 0.5
    "#;
    let (status, _, body) = post(&server, "/query", query);
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("\"count\":"), "{text}");
    assert!(text.contains("score"), "{text}");

    let (status, _, body) = post(&server, "/query", "this is not the dialect");
    assert_eq!(status, 400);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("error"), "{text}");
    server.shutdown();
}

#[test]
fn repeated_search_hits_the_cache() {
    let server = start(ServerConfig::default());
    let (_, _, first) = get(&server, "/search?q=rust&k=3");
    let (_, _, second) = get(&server, "/search?q=rust&k=3");
    assert_eq!(first, second);
    // Normalized variants share the cache entry.
    let (_, _, third) = get(&server, "/search?q=%20rust%20&k=3");
    assert_eq!(first, third);
    let metrics = server.metrics_json();
    let hits: u64 = metrics
        .split("\"hits\":")
        .nth(1)
        .and_then(|s| s.split(&[',', '}'][..]).next())
        .and_then(|s| s.parse().ok())
        .unwrap();
    assert!(hits >= 2, "expected ≥2 cache hits, metrics: {metrics}");
    server.shutdown();
}

#[test]
fn reload_invalidates_cached_results() {
    let server = start(ServerConfig::default());
    let (_, _, before) = get(&server, "/search?q=freshterm&k=3");
    let before = String::from_utf8(before).unwrap();
    assert!(before.contains("\"count\":0"), "{before}");
    // Serve it again so the entry is hot in the cache.
    let _ = get(&server, "/search?q=freshterm&k=3");

    server.reload(|db| {
        db.load("d.xml", "<article><p>freshterm appears here</p></article>")
            .unwrap();
        db.build_index();
    });

    let (_, _, after) = get(&server, "/search?q=freshterm&k=3");
    let after = String::from_utf8(after).unwrap();
    assert!(
        !after.contains("\"count\":0"),
        "stale cached result served after reload: {after}"
    );
    assert!(after.contains("d.xml"), "{after}");
    server.shutdown();
}

#[test]
fn reload_after_crash_recovery_serves_identical_results() {
    // The full durability story, end to end: a serving database whose
    // snapshot survives a torn overwrite, whose corrupted index sidecar is
    // detected and rebuilt, and whose recovered state is hot-swapped in
    // with `reload` — answering exactly what the pre-crash server answered.
    let dir = std::env::temp_dir().join(format!("tix-e2e-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("corpus.tix");
    let idx = dir.join("corpus.tix.idx");

    let db = corpus_db();
    db.save_store_to(&snap).unwrap();
    db.save_index_to(&idx).unwrap();
    let committed = std::fs::read(&snap).unwrap();

    let server = Server::start(db, ServerConfig::default()).unwrap();
    let (_, _, before) = get(&server, "/search?q=rust+xml&k=5");

    // Crash mid-overwrite of the store snapshot: the committed bytes on
    // disk must be untouched.
    let torn: Result<(), tix::PersistError> = tix::store::persist::atomic_write(&snap, |w| {
        w.write_all(&committed[..committed.len() / 2])?;
        Err(tix::PersistError::Io(std::io::Error::other(
            "injected crash",
        )))
    });
    assert!(torn.is_err());
    assert_eq!(
        std::fs::read(&snap).unwrap(),
        committed,
        "torn write damaged the snapshot"
    );

    // Bit-flip the index sidecar: recovery detects it, rebuilds, repairs.
    let mut sidecar = std::fs::read(&idx).unwrap();
    let mid = sidecar.len() / 2;
    sidecar[mid] ^= 0x20;
    std::fs::write(&idx, &sidecar).unwrap();

    let mut recovered = Database::open(&snap).unwrap();
    if recovered.load_index_from(&idx).is_err() {
        recovered.build_index();
        recovered.save_index_to(&idx).unwrap();
    } else {
        panic!("corrupt sidecar loaded without complaint");
    }

    server.reload(|db| *db = recovered);
    let (_, _, after) = get(&server, "/search?q=rust+xml&k=5");
    assert_eq!(after, before, "recovered database answers differently");
    // And the repaired sidecar now loads cleanly.
    let mut check = Database::open(&snap).unwrap();
    check.load_index_from(&idx).unwrap();
    server.shutdown();
}

#[test]
fn malformed_and_unroutable_requests_get_4xx() {
    let server = start(ServerConfig::default());
    let (status, _, _) = raw_request(&server, "NONSENSE\r\n\r\n");
    assert_eq!(status, 400);
    let (status, _, _) = raw_request(&server, "GET /health SMTP/1.0\r\n\r\n");
    assert_eq!(status, 400);
    let (status, _, _) = get(&server, "/no/such/endpoint");
    assert_eq!(status, 404);
    let (status, headers, _) = raw_request(&server, "POST /search HTTP/1.1\r\n\r\n");
    assert_eq!(status, 405);
    assert!(headers.contains("Allow: GET"), "{headers}");
    let (status, _, _) = get(&server, "/search?k=3"); // no q
    assert_eq!(status, 400);
    let (status, _, _) = get(&server, "/search?q=rust&k=banana");
    assert_eq!(status, 400);
    server.shutdown();
}

#[test]
fn oversized_body_is_413_not_a_panic() {
    let server = Server::start(
        corpus_db(),
        ServerConfig {
            max_body: 1024,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let (status, _, _) = raw_request(
        &server,
        "POST /search/batch HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
    );
    assert_eq!(status, 413);
    // The server is still healthy afterwards.
    let (status, _, _) = get(&server, "/health");
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn expired_deadline_is_504() {
    let server = Server::start(
        corpus_db(),
        ServerConfig {
            debug_endpoints: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let (status, _, body) = get(&server, "/debug/sleep?ms=2000&deadline_ms=40");
    assert_eq!(status, 504, "{}", String::from_utf8_lossy(&body));
    let metrics = server.metrics_json();
    assert!(
        metrics.contains("\"deadline_expired\":1"),
        "metrics: {metrics}"
    );
    server.shutdown();
}

#[test]
fn saturation_returns_503_with_retry_after() {
    let server = Server::start(
        corpus_db(),
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            debug_endpoints: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // Occupy the single worker, confirmed via the busy-workers gauge (a
    // fixed sleep here is flaky when the whole suite shares one core).
    let mut busy = TcpStream::connect(server.addr()).unwrap();
    busy.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    busy.write_all(b"GET /debug/sleep?ms=3000 HTTP/1.1\r\n\r\n")
        .unwrap();
    wait_for_metric(&server, "\"busy\":1");
    // …fill the single queue slot (it stays queued: the worker is busy)…
    let mut queued = TcpStream::connect(server.addr()).unwrap();
    queued
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    queued
        .write_all(b"GET /debug/sleep?ms=10 HTTP/1.1\r\n\r\n")
        .unwrap();
    wait_for_metric(&server, "\"depth\":1");
    // …and the next request must be rejected immediately, not buffered.
    let start = std::time::Instant::now();
    let (status, headers, _) = get(&server, "/health");
    assert_eq!(status, 503);
    assert!(headers.contains("Retry-After:"), "{headers}");
    assert!(
        start.elapsed() < Duration::from_millis(1500),
        "503 took {:?} — the full queue blocked behind the 3 s sleep instead of rejecting",
        start.elapsed()
    );
    // The in-flight and queued requests still complete.
    let (status, _, _) = read_response(&mut busy);
    assert_eq!(status, 200);
    let (status, _, _) = read_response(&mut queued);
    assert_eq!(status, 200);
    let metrics = server.metrics_json();
    assert!(
        metrics.contains("\"rejected_saturated\":1"),
        "metrics: {metrics}"
    );
    server.shutdown();
}

#[test]
fn graceful_shutdown_finishes_in_flight_work() {
    let server = Server::start(
        corpus_db(),
        ServerConfig {
            workers: 2,
            debug_endpoints: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let mut in_flight = TcpStream::connect(addr).unwrap();
    in_flight
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    in_flight
        .write_all(b"GET /debug/sleep?ms=300 HTTP/1.1\r\n\r\n")
        .unwrap();
    wait_for_metric(&server, "\"busy\":1");
    server.shutdown();
    // The in-flight request was drained, not dropped.
    let (status, _, _) = read_response(&mut in_flight);
    assert_eq!(status, 200);
    // New connections are refused once shutdown completes.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener still accepting after shutdown"
    );
}

#[test]
fn metrics_track_requests_and_latency() {
    let server = start(ServerConfig::default());
    for _ in 0..3 {
        let (status, _, _) = get(&server, "/search?q=rust");
        assert_eq!(status, 200);
    }
    let (status, _, body) = get(&server, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    for key in [
        "\"requests_total\":",
        "\"2xx\":",
        "\"p50_us\":",
        "\"p95_us\":",
        "\"p99_us\":",
        "\"utilization\":",
        "\"search\":3",
    ] {
        assert!(text.contains(key), "missing {key} in {text}");
    }
    server.shutdown();
}

fn delete(server: &Server, target: &str) -> (u16, String, Vec<u8>) {
    raw_request(
        server,
        &format!("DELETE {target} HTTP/1.1\r\nHost: t\r\n\r\n"),
    )
}

fn live_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tix-e2e-live-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn read_only_server_refuses_document_mutations() {
    let server = start(ServerConfig::default());
    let (status, _, _) = post(&server, "/documents?name=x.xml", "<a>x</a>");
    assert_eq!(status, 403);
    let (status, _, _) = delete(&server, "/documents/a.xml");
    assert_eq!(status, 403);
    server.shutdown();
}

#[test]
fn live_ingestion_mutates_while_serving() {
    let server = Server::start_live(live_dir("mutate"), ServerConfig::default()).unwrap();
    // Empty corpus serves (no results) before any ingestion.
    let (status, _, _) = get(&server, "/search?q=ingested");
    assert_eq!(status, 200);

    let (status, _, body) = post(
        &server,
        "/documents?name=live.xml",
        "<a><p>ingested rust text</p></a>",
    );
    assert_eq!(status, 201, "{}", String::from_utf8_lossy(&body));
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("\"inserted\":\"live.xml\""), "{text}");
    assert!(text.contains("\"lsn\":1"), "{text}");

    // The searcher sees the new document immediately.
    let (status, _, body) = get(&server, "/search?q=ingested&threshold=1.0");
    assert_eq!(status, 200);
    assert!(
        String::from_utf8(body).unwrap().contains("ingested"),
        "search does not see the ingested document"
    );

    // Duplicate name: 409, nothing changed.
    let (status, _, _) = post(&server, "/documents?name=live.xml", "<a>dup</a>");
    assert_eq!(status, 409);
    // Unparsable XML: 400.
    let (status, _, _) = post(&server, "/documents?name=bad.xml", "<unclosed>");
    assert_eq!(status, 400);
    // Unknown removal target: 404.
    let (status, _, _) = delete(&server, "/documents/nope.xml");
    assert_eq!(status, 404);
    // Wrong methods: 405 with the right Allow.
    let (status, headers, _) = get(&server, "/documents/live.xml");
    assert_eq!(status, 405);
    assert!(headers.contains("Allow: DELETE"), "{headers}");

    // Remove a second document end to end.
    let (status, _, _) = post(&server, "/documents?name=gone.xml", "<a>ephemeral</a>");
    assert_eq!(status, 201);
    let (status, _, body) = delete(&server, "/documents/gone.xml");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert!(String::from_utf8(body)
        .unwrap()
        .contains("\"removed\":\"gone.xml\""),);
    let (status, _, body) = get(&server, "/search?q=ephemeral&threshold=1.0");
    assert_eq!(status, 200);
    assert!(!String::from_utf8(body).unwrap().contains("gone.xml"));

    let metrics = server.metrics_json();
    assert!(metrics.contains("\"inserts\":2"), "{metrics}");
    assert!(metrics.contains("\"removes\":1"), "{metrics}");
    server.shutdown();
}

#[test]
fn ingested_documents_survive_restart_with_identical_results() {
    let dir = live_dir("restart");
    let query = "/search?q=durable+rust&threshold=1.0&k=5";
    let before = {
        let server = Server::start_live(&dir, ServerConfig::default()).unwrap();
        let (status, _, _) = post(
            &server,
            "/documents?name=a.xml",
            "<article><p>durable rust words</p><p>more rust</p></article>",
        );
        assert_eq!(status, 201);
        let (status, _, _) = post(
            &server,
            "/documents?name=b.xml",
            "<article><p>durable xml</p></article>",
        );
        assert_eq!(status, 201);
        let (status, _, _) = delete(&server, "/documents/b.xml");
        assert_eq!(status, 200);
        let (status, _, body) = get(&server, query);
        assert_eq!(status, 200);
        // The "kill": shutdown does NOT checkpoint, so everything lives
        // only in the WAL at this point.
        server.shutdown();
        String::from_utf8(body).unwrap()
    };
    assert!(
        !std::fs::exists(dir.join("store.1.tixsnap")).unwrap(),
        "no checkpoint should have been taken"
    );
    // Restart: recovery replays the WAL and answers byte-identically.
    let server = Server::start_live(&dir, ServerConfig::default()).unwrap();
    let (status, _, body) = get(&server, query);
    assert_eq!(status, 200);
    assert_eq!(String::from_utf8(body).unwrap(), before);
    let (status, _, _) = post(&server, "/documents?name=a.xml", "<a>dup</a>");
    assert_eq!(status, 409, "replayed state lost the duplicate-name guard");
    server.shutdown();
}

#[test]
fn min_score_is_never_served_from_the_unfiltered_cache() {
    // Regression: before the key carried min_score, a cached unfiltered
    // body could be replayed verbatim for a stricter request.
    let server = start(ServerConfig::default());
    let reference = corpus_db();
    let pick = PickParams {
        relevance_threshold: 1.0,
        fraction: 0.5,
    };
    let terms = normalize_query(&["rust", "xml"]);

    // Prime the cache with the unfiltered query.
    let (status, _, unfiltered) = get(&server, "/search?q=rust+xml&k=5&threshold=1.0");
    assert_eq!(status, 200);

    // A min_score no result can clear must come back empty — not the
    // cached unfiltered body.
    let (status, _, filtered) = get(
        &server,
        "/search?q=rust+xml&k=5&threshold=1.0&min_score=1e9",
    );
    assert_eq!(status, 200);
    assert_ne!(filtered, unfiltered, "stricter request served stale cache");
    let expected_results = reference
        .search_filtered(&["rust", "xml"], pick, 5, Some(1e9), &|| false)
        .unwrap();
    assert!(expected_results.is_empty());
    let expected = render::search_body(reference.store(), &terms, pick, 5, &expected_results);
    assert_eq!(filtered, expected.as_bytes());

    // The filtered entry caches under its own key and replays bit-exactly.
    let (status, _, again) = get(
        &server,
        "/search?q=rust+xml&k=5&threshold=1.0&min_score=1e9",
    );
    assert_eq!(status, 200);
    assert_eq!(again, filtered);

    // And the unfiltered entry is still intact under its own key.
    let (status, _, unfiltered_again) = get(&server, "/search?q=rust+xml&k=5&threshold=1.0");
    assert_eq!(status, 200);
    assert_eq!(unfiltered_again, unfiltered);

    // min_score=0.0 is a real (strict) filter — distinct key from "none".
    let (status, _, _) = get(
        &server,
        "/search?q=rust+xml&k=5&threshold=1.0&min_score=0.0",
    );
    assert_eq!(status, 200);

    let (status, _, _) = get(
        &server,
        "/search?q=rust+xml&k=5&threshold=1.0&min_score=nope",
    );
    assert_eq!(status, 400);
    server.shutdown();
}

#[test]
fn explain_reports_the_chosen_plan() {
    let server = start(ServerConfig::default());
    let (status, headers, body) = get(&server, "/explain?q=rust+xml&k=5&min_score=1.5");
    assert_eq!(status, 200);
    assert!(headers.contains("application/json"), "{headers}");
    let text = String::from_utf8(body).unwrap();
    assert!(text.starts_with("{\"explain\":\""), "{text}");
    for needle in ["term-join", "chosen:", "candidates:", "statistics:"] {
        assert!(text.contains(needle), "missing {needle:?} in {text}");
    }
    assert!(text.contains("threshold: score > 1.5"), "{text}");

    // Matches the direct Database::explain rendering exactly.
    let reference = corpus_db();
    let pick = PickParams {
        relevance_threshold: 0.5,
        fraction: 0.5,
    };
    let expected = format!(
        "{{\"explain\":{}}}",
        render::json_string(&reference.explain(&["rust", "xml"], pick, 5, Some(1.5)))
    );
    assert_eq!(text, expected);

    let (status, headers, _) = raw_request(
        &server,
        "POST /explain HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status, 405);
    assert!(headers.contains("Allow: GET"), "{headers}");
    let (status, _, _) = get(&server, "/explain");
    assert_eq!(status, 400);
    server.shutdown();
}

#[test]
fn durability_mode_acks_and_checkpoint_health() {
    let dir = live_dir("durability");
    let config = ServerConfig {
        durability: tix_ingest::DurabilityMode::Batched {
            max_delay: std::time::Duration::from_millis(2),
        },
        ..ServerConfig::default()
    };
    let server = Server::start_live(&dir, config).unwrap();

    // Batched acks carry both the assigned and the durable LSN.
    let (status, _, body) = post(&server, "/documents?name=a.xml", "<a><p>alpha</p></a>");
    assert_eq!(status, 201, "{}", String::from_utf8_lossy(&body));
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("\"lsn\":1"), "{text}");
    assert!(text.contains("\"durable_lsn\":"), "{text}");

    let (status, _, body) = get(&server, "/health");
    assert_eq!(status, 200);
    let health = String::from_utf8(body).unwrap();
    assert!(health.contains("\"durability\":\"batched:2\""), "{health}");
    assert!(health.contains("\"checkpoint_degraded\":false"), "{health}");
    assert!(health.contains("\"durable_lsn\":"), "{health}");

    // Obstruct the next checkpoint's snapshot targets (a rename cannot
    // replace a directory), so the admin checkpoint fails...
    for name in ["store.1.tixsnap", "index.1.tixsnap"] {
        std::fs::create_dir_all(dir.join(name)).unwrap();
    }
    let (status, _, _) = post(&server, "/admin/checkpoint", "");
    assert_eq!(status, 500);
    // ...and /health turns degraded, with the reason.
    let (_, _, body) = get(&server, "/health");
    let health = String::from_utf8(body).unwrap();
    assert!(health.contains("\"checkpoint_degraded\":true"), "{health}");
    assert!(health.contains("\"checkpoint_error\":"), "{health}");
    // Mutations keep working while degraded — the WAL still hardens them.
    let (status, _, _) = post(&server, "/documents?name=b.xml", "<a><p>beta</p></a>");
    assert_eq!(status, 201);

    // Clear the obstruction: the next checkpoint succeeds and the health
    // flag resets.
    for name in ["store.1.tixsnap", "index.1.tixsnap"] {
        let _ = std::fs::remove_dir_all(dir.join(name));
    }
    let (status, _, body) = post(&server, "/admin/checkpoint", "");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let (_, _, body) = get(&server, "/health");
    let health = String::from_utf8(body).unwrap();
    assert!(health.contains("\"checkpoint_degraded\":false"), "{health}");

    server.shutdown();
}
