//! The normalized-query LRU result cache.
//!
//! Entries are keyed on the **normalized** term list (see
//! [`tix::normalize_query`]), the Pick parameters and `k`, the endpoint
//! kind, and — crucially — the database **generation**. `build_index` /
//! `load` bump the generation, so every entry cached against the old store
//! is unreachable the instant a reload lands: invalidation is by key, not
//! by scanning. The [`tix_invariants::try_cache_coherent`] check at the
//! lookup boundary asserts exactly that property.

use std::collections::HashMap;

/// Which endpoint produced the cached body (identical term lists for
/// different endpoints must not collide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// `/search` — TermJoin → Pick → top-k.
    Search,
    /// `/phrase` — PhraseFinder.
    Phrase,
}

/// The full cache key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Endpoint kind.
    pub kind: QueryKind,
    /// Normalized query terms, order-preserving.
    pub terms: Vec<String>,
    /// `PickParams::relevance_threshold`, bit-exact.
    pub threshold_bits: u64,
    /// `PickParams::fraction`, bit-exact.
    pub fraction_bits: u64,
    /// The value threshold (`min_score`), bit-exact; `u64::MAX` when the
    /// request had none. The sentinel is distinct from `0.0f64.to_bits()`,
    /// so "no filter" and "filter at 0" — which differ, the filter is
    /// strict — can never share an entry.
    pub min_score_bits: u64,
    /// Result budget.
    pub k: usize,
    /// Database generation the result was computed at.
    pub generation: u64,
}

/// A cached rendered response body plus the generation it was computed at
/// (redundant with the key; kept so the coherence invariant can compare
/// entry against serve-time state explicitly).
#[derive(Debug, Clone)]
struct Entry {
    generation: u64,
    body: String,
    last_used: u64,
}

/// A fixed-capacity LRU map from [`QueryKey`] to rendered response body.
/// Not thread-safe by itself — the server wraps it in a `Mutex`.
#[derive(Debug)]
pub struct ResultCache {
    entries: HashMap<QueryKey, Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        ResultCache {
            entries: HashMap::with_capacity(capacity),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a rendered body. `current_generation` is the database
    /// generation at serve time; the coherence invariant asserts that any
    /// hit was computed at exactly that generation.
    pub fn get(&mut self, key: &QueryKey, current_generation: u64) -> Option<String> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some(entry) => {
                tix_invariants::check! {
                    tix_invariants::assert_cache_coherent(entry.generation, current_generation);
                }
                debug_assert_eq!(entry.generation, current_generation);
                entry.last_used = tick;
                self.hits += 1;
                Some(entry.body.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a rendered body, evicting the least-recently-used entry when
    /// at capacity. Stale-generation entries are preferred for eviction —
    /// they can never hit again.
    pub fn insert(&mut self, key: QueryKey, body: String) {
        self.tick += 1;
        let generation = key.generation;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(k, e)| (k.generation == generation, e.last_used))
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(
            key,
            Entry {
                generation,
                body,
                last_used: self.tick,
            },
        );
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(terms: &[&str], generation: u64) -> QueryKey {
        QueryKey {
            kind: QueryKind::Search,
            terms: terms.iter().map(|t| t.to_string()).collect(),
            threshold_bits: 0.5f64.to_bits(),
            fraction_bits: 0.5f64.to_bits(),
            min_score_bits: u64::MAX,
            k: 10,
            generation,
        }
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = ResultCache::new(8);
        assert_eq!(c.get(&key(&["rust"], 1), 1), None);
        c.insert(key(&["rust"], 1), "body".into());
        assert_eq!(c.get(&key(&["rust"], 1), 1), Some("body".into()));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn generation_bump_invalidates() {
        let mut c = ResultCache::new(8);
        c.insert(key(&["rust"], 1), "old".into());
        // After a rebuild the server looks up with the new generation in
        // the key — the old entry can never match.
        assert_eq!(c.get(&key(&["rust"], 2), 2), None);
        c.insert(key(&["rust"], 2), "new".into());
        assert_eq!(c.get(&key(&["rust"], 2), 2), Some("new".into()));
    }

    #[test]
    fn distinct_params_do_not_collide() {
        let mut c = ResultCache::new(8);
        c.insert(key(&["rust"], 1), "a".into());
        let mut other = key(&["rust"], 1);
        other.k = 20;
        assert_eq!(c.get(&other, 1), None);
        let mut phrase = key(&["rust"], 1);
        phrase.kind = QueryKind::Phrase;
        assert_eq!(c.get(&phrase, 1), None);
    }

    #[test]
    fn min_score_is_part_of_the_key() {
        // Regression: a cached unfiltered result must never be served for
        // a request carrying a min_score filter — and "no filter" must be
        // distinct from "filter at 0.0" (the filter is strict).
        let mut c = ResultCache::new(8);
        c.insert(key(&["rust"], 1), "unfiltered".into());
        let mut filtered = key(&["rust"], 1);
        filtered.min_score_bits = 2.5f64.to_bits();
        assert_eq!(c.get(&filtered, 1), None);
        let mut zero = key(&["rust"], 1);
        zero.min_score_bits = 0.0f64.to_bits();
        assert_eq!(c.get(&zero, 1), None);
        c.insert(filtered.clone(), "filtered".into());
        assert_eq!(c.get(&filtered, 1), Some("filtered".into()));
        assert_eq!(c.get(&key(&["rust"], 1), 1), Some("unfiltered".into()));
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut c = ResultCache::new(2);
        c.insert(key(&["a"], 1), "a".into());
        c.insert(key(&["b"], 1), "b".into());
        // Touch "a" so "b" is the LRU victim.
        assert!(c.get(&key(&["a"], 1), 1).is_some());
        c.insert(key(&["c"], 1), "c".into());
        assert_eq!(c.len(), 2);
        assert!(c.get(&key(&["a"], 1), 1).is_some());
        assert_eq!(c.get(&key(&["b"], 1), 1), None);
        assert!(c.get(&key(&["c"], 1), 1).is_some());
    }

    #[test]
    fn stale_generation_evicted_first() {
        let mut c = ResultCache::new(2);
        c.insert(key(&["a"], 1), "a".into());
        c.insert(key(&["b"], 2), "b".into());
        // "a" is stale at generation 2; despite "b" being older by LRU
        // order after the touch below, "a" goes first.
        assert!(c.get(&key(&["a"], 1), 1).is_some());
        c.insert(key(&["c"], 2), "c".into());
        assert_eq!(c.get(&key(&["a"], 1), 1), None);
        assert!(c.get(&key(&["b"], 2), 2).is_some());
    }

    #[test]
    fn capacity_minimum_is_one() {
        let mut c = ResultCache::new(0);
        c.insert(key(&["a"], 1), "a".into());
        c.insert(key(&["b"], 1), "b".into());
        assert_eq!(c.len(), 1);
    }
}
