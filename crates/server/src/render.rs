//! Canonical JSON rendering of query results.
//!
//! These functions are `pub` on purpose: the end-to-end tests call them on
//! results obtained from `Database::search` *directly* and assert that the
//! bytes served over HTTP are identical — the server adds no rendering
//! drift of its own.

use tix::exec::pick::PickParams;
use tix::exec::scored::ScoredNode;
use tix::query::ResultItem;
use tix::store::Store;

/// Longest text snippet included per result, in characters.
pub const SNIPPET_CHARS: usize = 120;

/// Escape `s` as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an `f64` score. Rust's shortest-roundtrip float formatting is
/// deterministic, so equal scores always render to equal bytes.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no NaN/Infinity; scores are finite by the Threshold
        // §4.2 invariant, but render defensively rather than emit invalid
        // JSON.
        "null".to_string()
    }
}

fn json_str_array(items: &[String]) -> String {
    let parts: Vec<String> = items.iter().map(|t| json_string(t)).collect();
    format!("[{}]", parts.join(","))
}

/// One scored element as a JSON object.
fn scored_node(store: &Store, s: &ScoredNode) -> String {
    let doc = store.doc(s.node.doc).name();
    let tag = store.tag_name(s.node);
    let snippet: String = store
        .text_content(s.node)
        .chars()
        .take(SNIPPET_CHARS)
        .collect();
    format!(
        "{{\"doc\":{},\"node\":{},\"tag\":{},\"score\":{},\"text\":{}}}",
        json_string(doc),
        json_string(&s.node.to_string()),
        tag.map(json_string).unwrap_or_else(|| "null".to_string()),
        json_f64(s.score),
        json_string(&snippet)
    )
}

fn scored_nodes(store: &Store, results: &[ScoredNode]) -> String {
    let parts: Vec<String> = results.iter().map(|s| scored_node(store, s)).collect();
    format!("[{}]", parts.join(","))
}

/// The `/search` response body.
pub fn search_body(
    store: &Store,
    terms: &[String],
    pick: PickParams,
    k: usize,
    results: &[ScoredNode],
) -> String {
    format!(
        "{{\"query\":{},\"k\":{},\"threshold\":{},\"fraction\":{},\"count\":{},\"results\":{}}}",
        json_str_array(terms),
        k,
        json_f64(pick.relevance_threshold),
        json_f64(pick.fraction),
        results.len(),
        scored_nodes(store, results)
    )
}

/// The `/phrase` response body. `matches` are PhraseFinder hits whose
/// score is the occurrence count.
pub fn phrase_body(store: &Store, terms: &[String], matches: &[ScoredNode]) -> String {
    let parts: Vec<String> = matches
        .iter()
        .map(|m| {
            format!(
                "{{\"doc\":{},\"node\":{},\"occurrences\":{}}}",
                json_string(store.doc(m.node.doc).name()),
                json_string(&m.node.to_string()),
                // Occurrence counts are small exact integers stored in the
                // score field.
                json_f64(m.score)
            )
        })
        .collect();
    format!(
        "{{\"phrase\":{},\"count\":{},\"matches\":[{}]}}",
        json_str_array(terms),
        matches.len(),
        parts.join(",")
    )
}

/// The `/search/batch` response body: one `/search`-shaped object per
/// input query, in input order.
pub fn batch_body(
    store: &Store,
    queries: &[Vec<String>],
    pick: PickParams,
    k: usize,
    results: &[Vec<ScoredNode>],
) -> String {
    let parts: Vec<String> = queries
        .iter()
        .zip(results)
        .map(|(terms, rs)| search_body(store, terms, pick, k, rs))
        .collect();
    format!(
        "{{\"count\":{},\"queries\":[{}]}}",
        queries.len(),
        parts.join(",")
    )
}

/// The `/query` (extended-XQuery dialect) response body.
pub fn query_body(items: &[ResultItem]) -> String {
    let parts: Vec<String> = items
        .iter()
        .map(|item| {
            format!(
                "{{\"tag\":{},\"score\":{},\"xml\":{}}}",
                item.tag
                    .as_deref()
                    .map(json_string)
                    .unwrap_or_else(|| "null".to_string()),
                item.score
                    .map(json_f64)
                    .unwrap_or_else(|| "null".to_string()),
                json_string(&item.xml)
            )
        })
        .collect();
    format!(
        "{{\"count\":{},\"results\":[{}]}}",
        items.len(),
        parts.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tix::Database;

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn search_body_is_deterministic_json() {
        let mut db = Database::new();
        db.load("a.xml", "<a><p>rust xml db</p></a>").unwrap();
        db.build_index();
        let pick = PickParams {
            relevance_threshold: 0.5,
            fraction: 0.5,
        };
        let results = db.search(&["rust"], pick, 5);
        let terms = vec!["rust".to_string()];
        let body = search_body(db.store(), &terms, pick, 5, &results);
        assert_eq!(body, search_body(db.store(), &terms, pick, 5, &results));
        assert!(body.starts_with("{\"query\":[\"rust\"],"), "{body}");
        assert!(body.contains("\"count\":"), "{body}");
        assert!(body.contains("\"doc\":\"a.xml\""), "{body}");
    }

    #[test]
    fn nonfinite_scores_render_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
