//! # tix-server — the query-serving subsystem
//!
//! A dependency-free (std-only) multi-threaded query server over
//! [`std::net::TcpListener`], speaking a minimal HTTP/1.1 subset. The
//! paper ran TIX inside TIMBER — a database *system* answering concurrent
//! clients — and this crate supplies that missing serving layer for the
//! reproduction:
//!
//! * **Bounded admission** — a fixed worker pool behind a fixed-capacity
//!   queue; saturation answers `503` + `Retry-After` at the accept loop
//!   instead of buffering without bound ([`queue`]).
//! * **Deadlines** — every request carries a deadline (default or
//!   `deadline_ms`), checked cooperatively between the pipeline's operator
//!   stages; expiry answers `504` and stops paying for dead work.
//! * **Result caching** — a normalized-query LRU keyed on
//!   `(endpoint, terms, pick params, k, generation)`; `build_index`/`load`
//!   bump the database generation, so a reload invalidates by key
//!   ([`cache`], checked by `tix_invariants::try_cache_coherent`).
//! * **Live metrics** — counters, queue-depth and worker-utilization
//!   gauges, and log-bucketed latency histograms with p50/p95/p99, as the
//!   JSON `/metrics` document ([`metrics`]).
//! * **Graceful shutdown** — refuse new connections, drain the admitted
//!   queue, finish in-flight requests, join every thread.
//!
//! ## Endpoints
//!
//! | route | method | description |
//! |-------|--------|-------------|
//! | `/search?q=rust+xml&k=10&threshold=0.5&fraction=0.5` | GET | TermJoin → Pick → top-k |
//! | `/phrase?q=xml+database` | GET | PhraseFinder exact-phrase lookup |
//! | `/search/batch?k=10` | POST | one query per body line, deduplicated |
//! | `/query` | POST | extended-XQuery dialect (body = query text) |
//! | `/documents?name=X` | POST | ingest a document (body = XML); live servers only |
//! | `/documents/{name}` | DELETE | remove a document by name; live servers only |
//! | `/health` | GET | liveness, role, corpus stats, applied LSN |
//! | `/metrics` | GET | the metrics registry as JSON |
//! | `/wal?from_lsn=N` | GET | binary WAL suffix for follower replication |
//! | `/cluster/search?q=…&k=…` | GET | shard top-k **with ties** + §4.2 bound, scores as raw bits |
//! | `/cluster/phrase?q=…` | GET | shard phrase matches, counts as raw bits |
//! | `/admin/checkpoint` | POST | force a checkpoint now |
//!
//! Reads carrying `min_lsn=N` answer 403 until this node has applied LSN
//! `N` — the replica-staleness watermark the coordinator uses to route
//! around lagging followers.
//!
//! A server started with [`Server::start`] is **read-only** (document
//! mutations answer 403). [`Server::start_live`] serves a durable
//! ingestion directory instead — mutations are write-ahead logged,
//! applied through incremental index maintenance, and checkpointed when
//! the log crosses its size threshold (see `tix-ingest`); one writer at a
//! time mutates under the ingest mutex while readers keep querying.
//!
//! Every response is JSON with `Connection: close` (one request per
//! connection).
//!
//! ```no_run
//! use tix::Database;
//! use tix_server::{Server, ServerConfig};
//!
//! let mut db = Database::new();
//! db.load("a.xml", "<a><p>rust xml</p></a>").unwrap();
//! let server = Server::start(db, ServerConfig::default()).unwrap();
//! println!("serving on http://{}", server.addr());
//! server.join();
//! ```

pub mod cache;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod render;
mod server;

pub use server::{Server, ServerConfig, ServerRole, MAX_BATCH_QUERIES, WAL_PULL_MAX_BYTES};
