//! A minimal HTTP/1.1 subset over `std::io` — just enough wire protocol
//! for the query server: one request per connection, `Content-Length`
//! bodies, hard limits on every variable-length input, and typed parse
//! errors that map onto 4xx status codes instead of panics.

use std::io::{self, BufRead, Read, Write};

/// Longest accepted request line (method + target + version), in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Longest accepted header section, in bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Variable-size input limits for [`read_request`].
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Largest accepted request body, in bytes.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_body: 1024 * 1024,
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Percent-decoded path component of the target.
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers, in order of appearance, names as sent.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter named `name`, if any.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed. Every variant maps to a 4xx/5xx
/// status via [`ParseError::status`]; none of them abort the server.
#[derive(Debug)]
pub enum ParseError {
    /// The underlying socket failed or closed mid-request.
    Io(io::Error),
    /// The connection closed before a full request line arrived.
    ConnectionClosed,
    /// The request line was not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine(String),
    /// The request line exceeded [`MAX_REQUEST_LINE`].
    RequestLineTooLong,
    /// A header line had no `:` separator.
    BadHeader(String),
    /// The header section exceeded [`MAX_HEADER_BYTES`].
    HeadersTooLarge,
    /// `Content-Length` was present but not a decimal integer.
    BadContentLength(String),
    /// The declared body length exceeded [`Limits::max_body`].
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Configured cap.
        max: usize,
    },
    /// `Transfer-Encoding` other than identity (e.g. chunked).
    UnsupportedTransferEncoding(String),
}

impl ParseError {
    /// The response status and reason phrase this error maps to.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            ParseError::Io(_) | ParseError::ConnectionClosed => (400, "Bad Request"),
            ParseError::BadRequestLine(_) => (400, "Bad Request"),
            ParseError::RequestLineTooLong => (414, "URI Too Long"),
            ParseError::BadHeader(_) | ParseError::BadContentLength(_) => (400, "Bad Request"),
            ParseError::HeadersTooLarge => (431, "Request Header Fields Too Large"),
            ParseError::BodyTooLarge { .. } => (413, "Content Too Large"),
            ParseError::UnsupportedTransferEncoding(_) => (501, "Not Implemented"),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::ConnectionClosed => write!(f, "connection closed before a full request"),
            ParseError::BadRequestLine(line) => write!(f, "malformed request line {line:?}"),
            ParseError::RequestLineTooLong => {
                write!(f, "request line longer than {MAX_REQUEST_LINE} bytes")
            }
            ParseError::BadHeader(line) => write!(f, "malformed header line {line:?}"),
            ParseError::HeadersTooLarge => {
                write!(f, "header section longer than {MAX_HEADER_BYTES} bytes")
            }
            ParseError::BadContentLength(v) => write!(f, "bad Content-Length {v:?}"),
            ParseError::BodyTooLarge { declared, max } => {
                write!(
                    f,
                    "declared body of {declared} bytes exceeds the {max}-byte cap"
                )
            }
            ParseError::UnsupportedTransferEncoding(v) => {
                write!(f, "unsupported Transfer-Encoding {v:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Read one line (up to and including `\n`), enforcing a byte cap. Returns
/// the line without its trailing `\r\n` / `\n`. `Ok(None)` means clean EOF
/// before any byte of the line.
fn read_line(
    reader: &mut impl BufRead,
    cap: usize,
    too_long: ParseError,
) -> Result<Option<String>, ParseError> {
    let mut buf = Vec::new();
    // `take` bounds how much a newline-less attacker can make us buffer.
    // `&mut R` is itself a reader; `take` on it leaves `reader` usable
    // for the rest of the request.
    let mut limited = std::io::Read::take(&mut *reader, cap as u64 + 1);
    limited
        .read_until(b'\n', &mut buf)
        .map_err(ParseError::Io)?;
    if buf.is_empty() {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        return Err(if buf.len() > cap {
            too_long
        } else {
            ParseError::ConnectionClosed
        });
    }
    while matches!(buf.last(), Some(b'\n') | Some(b'\r')) {
        buf.pop();
    }
    Ok(Some(String::from_utf8_lossy(&buf).into_owned()))
}

/// Parse one request from `reader`, applying `limits`.
pub fn read_request(reader: &mut impl BufRead, limits: &Limits) -> Result<Request, ParseError> {
    let line = read_line(reader, MAX_REQUEST_LINE, ParseError::RequestLineTooLong)?
        .ok_or(ParseError::ConnectionClosed)?;
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(ParseError::BadRequestLine(line.clone())),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::BadRequestLine(line.clone()));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path, false);
    let query = raw_query.map(parse_query).unwrap_or_default();
    let method = method.to_string();

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let remaining = MAX_HEADER_BYTES.saturating_sub(header_bytes);
        let line = read_line(reader, remaining, ParseError::HeadersTooLarge)?
            .ok_or(ParseError::ConnectionClosed)?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len() + 2;
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::BadHeader(line.clone()))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    let request = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if let Some(te) = request.header("Transfer-Encoding") {
        if !te.eq_ignore_ascii_case("identity") {
            return Err(ParseError::UnsupportedTransferEncoding(te.to_string()));
        }
    }
    let declared = match request.header("Content-Length") {
        Some(v) => v
            .trim()
            .parse::<usize>()
            .map_err(|_| ParseError::BadContentLength(v.to_string()))?,
        None => 0,
    };
    if declared > limits.max_body {
        return Err(ParseError::BodyTooLarge {
            declared,
            max: limits.max_body,
        });
    }
    let mut body = vec![0u8; declared];
    if declared > 0 {
        reader.read_exact(&mut body).map_err(ParseError::Io)?;
    }
    Ok(Request { body, ..request })
}

/// Split-and-decode an `application/x-www-form-urlencoded` query string.
fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k, true), percent_decode(v, true)),
            None => (percent_decode(pair, true), String::new()),
        })
        .collect()
}

/// Percent-decoding; `plus_as_space` additionally maps `+` to a space
/// (query-string convention). Invalid escapes pass through literally.
fn percent_decode(s: &str, plus_as_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        match b {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|pair| {
                    std::str::from_utf8(pair)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(decoded) => {
                        out.push(decoded);
                        i += 3;
                    }
                    None => {
                        out.push(b);
                        i += 1;
                    }
                }
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A response ready to serialize. Bodies are JSON except for the binary
/// WAL images the replication endpoint serves.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers beyond the always-present `Content-Type`,
    /// `Content-Length`, and `Connection: close`.
    pub extra_headers: Vec<(&'static str, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the standard reason phrase for `status`.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            reason: reason(status),
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A binary response (`application/octet-stream`) — the `/wal`
    /// replication endpoint's WAL-image payload.
    pub fn binary(status: u16, body: Vec<u8>) -> Self {
        Response {
            status,
            reason: reason(status),
            content_type: "application/octet-stream",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// A JSON error response with an `{"error": ...}` body.
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(
            status,
            format!("{{\"error\":{}}}", super::render::json_string(message)),
        )
    }

    /// Add a header.
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra_headers.push((name, value));
        self
    }

    /// Serialize onto `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            self.reason,
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.extra_headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        410 => "Gone",
        413 => "Content Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// A minimal blocking HTTP client for node-to-node calls (the follower's
/// WAL pulls, the coordinator's scatter-gather fan-out). Sends
/// `Connection: close` and reads the peer's response to EOF, so no
/// keep-alive state is ever shared between requests. Returns the status
/// code and the raw body bytes.
pub fn client_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: std::time::Duration,
) -> io::Result<(u16, Vec<u8>)> {
    use std::net::{TcpStream, ToSocketAddrs};

    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "response has no header end"))?;
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response head is not UTF-8"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;
    Ok((status, raw[header_end + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(raw), &Limits::default())
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse(b"GET /search?q=rust+xml&k=5 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/search");
        assert_eq!(req.query_param("q"), Some("rust xml"));
        assert_eq!(req.query_param("k"), Some("5"));
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse(b"POST /search/batch HTTP/1.1\r\nContent-Length: 9\r\n\r\nrust\nxml\n").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"rust\nxml\n");
    }

    #[test]
    fn percent_decoding() {
        let req = parse(b"GET /search?q=a%20b%2Bc&x=%zz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query_param("q"), Some("a b+c"));
        // Invalid escape passes through.
        assert_eq!(req.query_param("x"), Some("%zz"));
    }

    #[test]
    fn malformed_request_line_is_400() {
        let err = parse(b"NONSENSE\r\n\r\n").unwrap_err();
        assert_eq!(err.status().0, 400);
        let err = parse(b"GET /x SMTP/1.0\r\n\r\n").unwrap_err();
        assert_eq!(err.status().0, 400);
        let err = parse(b"GET /x HTTP/1.1 extra\r\n\r\n").unwrap_err();
        assert_eq!(err.status().0, 400);
    }

    #[test]
    fn oversized_request_line_is_414() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE + 10));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let err = parse(&raw).unwrap_err();
        assert!(matches!(err, ParseError::RequestLineTooLong), "{err}");
        assert_eq!(err.status().0, 414);
    }

    #[test]
    fn oversized_headers_are_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..2000 {
            raw.extend_from_slice(format!("X-Filler-{i}: {}\r\n", "v".repeat(64)).as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let err = parse(&raw).unwrap_err();
        assert_eq!(err.status().0, 431);
    }

    #[test]
    fn oversized_body_is_413_before_reading() {
        // The body is never allocated or read: no body bytes follow, yet
        // the declared length alone trips the cap.
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n";
        let err = parse(raw).unwrap_err();
        assert!(matches!(err, ParseError::BodyTooLarge { .. }), "{err}");
        assert_eq!(err.status().0, 413);
    }

    #[test]
    fn bad_content_length_is_400() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err();
        assert!(matches!(err, ParseError::BadContentLength(_)), "{err}");
        assert_eq!(err.status().0, 400);
    }

    #[test]
    fn chunked_encoding_is_501() {
        let err = parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err.status().0, 501);
    }

    #[test]
    fn truncated_request_is_connection_closed() {
        let err = parse(b"GET /x HTT").unwrap_err();
        assert!(matches!(err, ParseError::ConnectionClosed), "{err}");
        let err = parse(b"").unwrap_err();
        assert!(matches!(err, ParseError::ConnectionClosed), "{err}");
    }

    #[test]
    fn response_serialization() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .with_header("Retry-After", "1".into())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");
    }
}
