//! The serving metrics registry: lock-free counters and gauges plus
//! log-bucketed latency histograms, rendered as the `/metrics` JSON
//! document. Everything is atomic — recording a sample on the hot path is
//! a handful of `fetch_add`s, never a lock.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Number of log₂ latency buckets: bucket `i` covers `[2^i, 2^(i+1))`
/// microseconds, so 40 buckets span 1 µs to ~13 days.
pub const BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram with atomic buckets.
///
/// Percentile estimates are upper bucket bounds, so they over-report by at
/// most 2× — the right bias for latency SLOs (never claims faster than
/// reality) at a fixed 320-byte footprint.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one sample.
    pub fn record(&self, latency: Duration) {
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let bucket = usize::try_from(micros.max(1).ilog2())
            .unwrap_or(0)
            .min(BUCKETS - 1);
        if let Some(slot) = self.buckets.get(bucket) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 with no samples).
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// The `q`-quantile (`0.0..=1.0`) in microseconds, as the upper bound
    /// of the bucket where the cumulative count crosses it. 0 with no
    /// samples.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return 2u64.saturating_pow(u32::try_from(i + 1).unwrap_or(u32::MAX));
            }
        }
        2u64.saturating_pow(BUCKETS as u32)
    }

    /// A snapshot of the raw bucket counts, index `i` covering
    /// `[2^i, 2^(i+1))` µs. The coordinator merges per-node histograms by
    /// summing these bucket-wise, which is exact (unlike merging
    /// quantiles).
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Total recorded microseconds (for exact merged means).
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// Render as a JSON object with count, mean, p50/p95/p99, and the raw
    /// log₂ `buckets` array (so multi-node aggregation can merge
    /// histograms exactly instead of averaging quantiles).
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self.bucket_counts().iter().map(|c| c.to_string()).collect();
        format!(
            "{{\"count\":{},\"sum_us\":{},\"mean_us\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"buckets\":[{}]}}",
            self.count(),
            self.sum_micros(),
            self.mean_micros(),
            self.quantile_micros(0.50),
            self.quantile_micros(0.95),
            self.quantile_micros(0.99),
            buckets.join(",")
        )
    }
}

/// Per-endpoint request counter set.
#[derive(Debug, Default)]
pub struct EndpointCounters {
    /// `/search` requests.
    pub search: AtomicU64,
    /// `/phrase` requests.
    pub phrase: AtomicU64,
    /// `/search/batch` requests.
    pub batch: AtomicU64,
    /// `/query` requests.
    pub query: AtomicU64,
    /// `/documents` mutations (POST and DELETE).
    pub documents: AtomicU64,
    /// `/health` requests.
    pub health: AtomicU64,
    /// `/metrics` requests.
    pub metrics: AtomicU64,
    /// `/explain` requests.
    pub explain: AtomicU64,
    /// `/wal` replication pulls served.
    pub wal: AtomicU64,
    /// `/cluster/*` scatter-gather requests.
    pub cluster: AtomicU64,
    /// Everything else (404s, debug endpoints).
    pub other: AtomicU64,
}

/// The registry behind `/metrics`. One instance per server, shared by the
/// accept loop and every worker.
#[derive(Debug)]
pub struct Metrics {
    /// Requests admitted past the accept loop (includes ones that later
    /// fail parsing or time out).
    pub requests_total: AtomicU64,
    /// Responses by status class: index 0 ↔ 1xx, … index 4 ↔ 5xx.
    pub responses_by_class: [AtomicU64; 5],
    /// 503s sent because the admission queue was full.
    pub rejected_saturated: AtomicU64,
    /// 503s sent because the server was shutting down.
    pub rejected_shutdown: AtomicU64,
    /// 504s sent because a deadline expired.
    pub deadline_expired: AtomicU64,
    /// Documents ingested through `POST /documents`.
    pub ingest_inserts: AtomicU64,
    /// Documents removed through `DELETE /documents/{name}`.
    pub ingest_removes: AtomicU64,
    /// Checkpoints taken by the serving layer (size-triggered).
    pub ingest_checkpoints: AtomicU64,
    /// Size-triggered checkpoints that failed (the mutation itself was
    /// already durable; the WAL simply keeps growing until the next try).
    pub ingest_checkpoint_errors: AtomicU64,
    /// Group-commit batches led (one WAL write each). Mirrored from the
    /// ingest engine's [`CommitStats`](tix_ingest::CommitStats) after
    /// every mutation.
    pub commit_batches: AtomicU64,
    /// Frames written through group commit.
    pub commit_frames: AtomicU64,
    /// fsyncs the commit pipeline actually issued; `frames - fsyncs` is
    /// what batching + relaxed durability saved.
    pub commit_fsyncs: AtomicU64,
    /// Largest number of frames one leader flushed in a single batch.
    pub commit_max_batch: AtomicU64,
    /// Total microseconds commit leaders stalled behind checkpoint
    /// rotations (should stay near 0 — checkpoints are non-blocking).
    pub commit_checkpoint_stall_us: AtomicU64,
    /// WAL suffixes this node pulled from its primary (followers only).
    pub replication_pulls: AtomicU64,
    /// Logical ops applied from pulled WAL images (followers only).
    pub replication_records: AtomicU64,
    /// Failed pulls or rejected images (gap, lsn discontinuity, apply
    /// error). Torn transfers are *not* errors — the scanner just yields
    /// the committed prefix and the next pull resumes.
    pub replication_errors: AtomicU64,
    /// Reads answered 403 because this replica's applied LSN was behind
    /// the request's `min_lsn` watermark.
    pub stale_rejects: AtomicU64,
    /// Result-cache hits.
    pub cache_hits: AtomicU64,
    /// Result-cache misses.
    pub cache_misses: AtomicU64,
    /// Current admission-queue depth (gauge).
    pub queue_depth: AtomicUsize,
    /// Workers currently handling a request (gauge).
    pub workers_busy: AtomicUsize,
    /// Size of the worker pool (constant).
    pub workers_total: usize,
    /// Per-endpoint request counts.
    pub endpoints: EndpointCounters,
    /// End-to-end latency (admission to response flushed).
    pub latency: LatencyHistogram,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: LatencyHistogram,
}

impl Metrics {
    /// A zeroed registry for a pool of `workers_total` workers.
    pub fn new(workers_total: usize) -> Self {
        Metrics {
            requests_total: AtomicU64::new(0),
            responses_by_class: Default::default(),
            rejected_saturated: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            ingest_inserts: AtomicU64::new(0),
            ingest_removes: AtomicU64::new(0),
            ingest_checkpoints: AtomicU64::new(0),
            ingest_checkpoint_errors: AtomicU64::new(0),
            commit_batches: AtomicU64::new(0),
            commit_frames: AtomicU64::new(0),
            commit_fsyncs: AtomicU64::new(0),
            commit_max_batch: AtomicU64::new(0),
            commit_checkpoint_stall_us: AtomicU64::new(0),
            replication_pulls: AtomicU64::new(0),
            replication_records: AtomicU64::new(0),
            replication_errors: AtomicU64::new(0),
            stale_rejects: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            workers_busy: AtomicUsize::new(0),
            workers_total,
            endpoints: EndpointCounters::default(),
            latency: LatencyHistogram::default(),
            queue_wait: LatencyHistogram::default(),
        }
    }

    /// Count one response with `status`.
    pub fn record_status(&self, status: u16) {
        let class = usize::from(status / 100).saturating_sub(1);
        if let Some(slot) = self.responses_by_class.get(class) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Render the whole registry as the `/metrics` JSON document.
    pub fn to_json(&self) -> String {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let busy = self.workers_busy.load(Ordering::Relaxed);
        let utilization = if self.workers_total == 0 {
            0.0
        } else {
            busy as f64 / self.workers_total as f64
        };
        format!(
            concat!(
                "{{\"requests_total\":{},",
                "\"responses\":{{\"1xx\":{},\"2xx\":{},\"3xx\":{},\"4xx\":{},\"5xx\":{}}},",
                "\"rejected_saturated\":{},",
                "\"rejected_shutdown\":{},",
                "\"deadline_expired\":{},",
                "\"ingest\":{{\"inserts\":{},\"removes\":{},\"checkpoints\":{},\"checkpoint_errors\":{}}},",
                "\"commit\":{{\"batches\":{},\"frames\":{},\"fsyncs\":{},\"fsyncs_saved\":{},\"max_batch_frames\":{},\"checkpoint_stall_us\":{}}},",
                "\"replication\":{{\"pulls\":{},\"records\":{},\"errors\":{},\"stale_rejects\":{}}},",
                "\"cache\":{{\"hits\":{},\"misses\":{}}},",
                "\"queue\":{{\"depth\":{},\"wait\":{}}},",
                "\"workers\":{{\"busy\":{},\"total\":{},\"utilization\":{:.3}}},",
                "\"endpoints\":{{\"search\":{},\"phrase\":{},\"batch\":{},\"query\":{},\"documents\":{},\"health\":{},\"metrics\":{},\"explain\":{},\"wal\":{},\"cluster\":{},\"other\":{}}},",
                "\"latency\":{}}}"
            ),
            load(&self.requests_total),
            load(&self.responses_by_class[0]),
            load(&self.responses_by_class[1]),
            load(&self.responses_by_class[2]),
            load(&self.responses_by_class[3]),
            load(&self.responses_by_class[4]),
            load(&self.rejected_saturated),
            load(&self.rejected_shutdown),
            load(&self.deadline_expired),
            load(&self.ingest_inserts),
            load(&self.ingest_removes),
            load(&self.ingest_checkpoints),
            load(&self.ingest_checkpoint_errors),
            load(&self.commit_batches),
            load(&self.commit_frames),
            load(&self.commit_fsyncs),
            load(&self.commit_frames).saturating_sub(load(&self.commit_fsyncs)),
            load(&self.commit_max_batch),
            load(&self.commit_checkpoint_stall_us),
            load(&self.replication_pulls),
            load(&self.replication_records),
            load(&self.replication_errors),
            load(&self.stale_rejects),
            load(&self.cache_hits),
            load(&self.cache_misses),
            self.queue_depth.load(Ordering::Relaxed),
            self.queue_wait.to_json(),
            busy,
            self.workers_total,
            utilization,
            load(&self.endpoints.search),
            load(&self.endpoints.phrase),
            load(&self.endpoints.batch),
            load(&self.endpoints.query),
            load(&self.endpoints.documents),
            load(&self.endpoints.health),
            load(&self.endpoints.metrics),
            load(&self.endpoints.explain),
            load(&self.endpoints.wal),
            load(&self.endpoints.cluster),
            load(&self.endpoints.other),
            self.latency.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for micros in [100u64, 100, 100, 100, 100, 100, 100, 100, 100, 10_000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 10);
        // p50 falls in the 100 µs bucket [64, 128) → upper bound 128.
        assert_eq!(h.quantile_micros(0.50), 128);
        // p99 falls in the 10 ms bucket [8192, 16384) → upper bound 16384.
        assert_eq!(h.quantile_micros(0.99), 16384);
        assert!(h.mean_micros() >= 100 && h.mean_micros() <= 10_000);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_micros(0.5), 0);
        assert_eq!(h.mean_micros(), 0);
    }

    #[test]
    fn histogram_extremes_clamp() {
        let h = LatencyHistogram::default();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(1 << 50));
        assert_eq!(h.count(), 2);
        assert!(h.quantile_micros(1.0) > 0);
    }

    #[test]
    fn histogram_json_exposes_raw_buckets() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(100));
        let json = h.to_json();
        assert!(json.contains("\"buckets\":["), "{json}");
        assert!(json.contains("\"sum_us\":200"), "{json}");
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 2);
        // 100 µs lands in bucket 6 ([64, 128)).
        assert_eq!(h.bucket_counts()[6], 2);
    }

    #[test]
    fn commit_fsyncs_saved_is_frames_minus_fsyncs() {
        let m = Metrics::new(1);
        m.commit_frames.store(10, Ordering::Relaxed);
        m.commit_fsyncs.store(3, Ordering::Relaxed);
        let json = m.to_json();
        assert!(json.contains("\"fsyncs_saved\":7"), "{json}");
    }

    #[test]
    fn status_classes_counted() {
        let m = Metrics::new(4);
        m.record_status(200);
        m.record_status(201);
        m.record_status(404);
        m.record_status(503);
        assert_eq!(m.responses_by_class[1].load(Ordering::Relaxed), 2);
        assert_eq!(m.responses_by_class[3].load(Ordering::Relaxed), 1);
        assert_eq!(m.responses_by_class[4].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn json_document_shape() {
        let m = Metrics::new(2);
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.record_status(200);
        m.latency.record(Duration::from_millis(5));
        let json = m.to_json();
        for key in [
            "\"requests_total\":3",
            "\"2xx\":1",
            "\"cache\"",
            "\"queue\"",
            "\"utilization\"",
            "\"p95_us\"",
            "\"endpoints\"",
            "\"documents\":0",
            "\"ingest\":{\"inserts\":0,\"removes\":0,\"checkpoints\":0,\"checkpoint_errors\":0}",
            "\"commit\":{\"batches\":0,\"frames\":0,\"fsyncs\":0,\"fsyncs_saved\":0,\"max_batch_frames\":0,\"checkpoint_stall_us\":0}",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
