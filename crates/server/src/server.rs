//! The serving core: accept loop, bounded admission, fixed worker pool,
//! request routing, deadlines, the generation-keyed result cache, and
//! graceful shutdown.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use tix::exec::pick::PickParams;
use tix::query::run_query;
use tix::store::{LoadError, RemoveError};
use tix::{normalize_query, Database};
use tix_ingest::{DurabilityMode, Ingest, IngestError, IngestOptions};

use crate::cache::{QueryKey, QueryKind, ResultCache};
use crate::http::{self, Limits, Request, Response};
use crate::metrics::Metrics;
use crate::queue::{BoundedQueue, PushError};
use crate::render;

/// Most queries accepted in one `/search/batch` request.
pub const MAX_BATCH_QUERIES: usize = 512;

/// Largest WAL image one `/wal` response ships (frames are never split,
/// so a single oversized frame still goes through whole).
pub const WAL_PULL_MAX_BYTES: u64 = 4 * 1024 * 1024;

/// What this node is in a cluster (reported by `/health`, enforced on the
/// write path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerRole {
    /// A single-node server — the pre-cluster behavior, writes allowed
    /// when a durable directory is attached.
    Standalone,
    /// A shard primary: accepts writes, retains its WAL, and serves
    /// `/wal` suffixes to followers.
    Primary,
    /// A read replica: applies its primary's WAL stream; direct writes
    /// answer 403.
    Follower,
}

impl ServerRole {
    /// The `/health` string for this role.
    pub fn as_str(self) -> &'static str {
        match self {
            ServerRole::Standalone => "standalone",
            ServerRole::Primary => "primary",
            ServerRole::Follower => "follower",
        }
    }
}

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker-pool size (minimum 1).
    pub workers: usize,
    /// Admission-queue capacity (minimum 1). A full queue answers 503.
    pub queue_capacity: usize,
    /// Result-cache capacity in entries (minimum 1).
    pub cache_capacity: usize,
    /// Default per-request deadline; requests may lower (never raise) it
    /// with a `deadline_ms` query parameter.
    pub default_deadline_ms: u64,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// Worker threads used *inside* one query evaluation. Kept at 1 by
    /// default: with a pool of concurrent workers, per-request parallelism
    /// would oversubscribe the machine.
    pub request_threads: usize,
    /// Expose `/debug/sleep` (used by the saturation and deadline tests
    /// and the load generator's worst-case mode).
    pub debug_endpoints: bool,
    /// When a mutation is acknowledged (live servers only): `Strict`
    /// fsyncs before every ack, `Batched` acks written frames and fsyncs
    /// on a short timer, `Flush` defers to checkpoints and explicit
    /// flushes. See [`DurabilityMode`].
    pub durability: DurabilityMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 256,
            default_deadline_ms: 10_000,
            max_body: 1024 * 1024,
            request_threads: 1,
            debug_endpoints: false,
            durability: DurabilityMode::Strict,
        }
    }
}

/// One admitted connection waiting for a worker.
struct Job {
    stream: TcpStream,
    admitted: Instant,
}

/// State shared by the accept loop and every worker.
///
/// Write-path discipline: a mutation **stages** (applies to the database
/// and reserves its WAL frame) under the `db` write lock — the lock is
/// what orders concurrent writers, so LSN order equals apply order — and
/// then **commits** (waits for the frame to be written/fsynced per the
/// durability mode) with no lock held. That handoff is what lets N
/// concurrent mutations ride one group-commit batch and one fsync while
/// readers take only the `db` read lock and see coherent pre- or
/// post-mutation views.
struct Shared {
    db: RwLock<Database>,
    /// `Some` when serving a durable directory (live ingestion enabled);
    /// `None` for a read-only in-memory server. The engine is internally
    /// synchronized (`&self` mutations); exclusivity of *application*
    /// comes from the `db` write lock held while staging.
    ingest: Option<Ingest>,
    /// `Some(reason)` after a checkpoint attempt failed, cleared by the
    /// next success. Mutations stay durable in the WAL either way, but
    /// the log keeps growing and recovery gets slower — `/health`
    /// surfaces this as `checkpoint_degraded` so operators see it.
    checkpoint_health: Mutex<Option<String>>,
    cache: Mutex<ResultCache>,
    metrics: Metrics,
    queue: BoundedQueue<Job>,
    limits: Limits,
    default_deadline: Duration,
    debug_endpoints: bool,
    shutdown: AtomicBool,
    role: ServerRole,
    /// The last applied LSN, mirrored out of the ingest engine so read
    /// paths (`/health`, `min_lsn` gating) never contend on the ingest
    /// mutex. Updated after every mutation/replicated apply, while the
    /// ingest mutex is still held — so it never runs ahead of the engine.
    applied_lsn: AtomicU64,
    /// Mirror of [`Ingest::checkpoint_seq`], same discipline.
    checkpoint_seq: AtomicU64,
    /// Mirror of [`Ingest::wal_len`], same discipline.
    wal_len: AtomicU64,
    /// Mirror of [`Ingest::durable_lsn`] — what would survive a crash
    /// right now (trails `applied_lsn` under `Batched`/`Flush`).
    durable_lsn: AtomicU64,
}

impl Shared {
    /// Refresh the lock-free mirrors (and the `/metrics` commit-stats
    /// copy) from the engine, right after a mutation, apply, flush, or
    /// checkpoint.
    fn publish_ingest_state(&self, ingest: &Ingest) {
        self.applied_lsn.store(ingest.last_lsn(), Ordering::SeqCst);
        self.checkpoint_seq
            .store(ingest.checkpoint_seq(), Ordering::SeqCst);
        self.wal_len.store(ingest.wal_len(), Ordering::SeqCst);
        self.durable_lsn
            .store(ingest.durable_lsn(), Ordering::SeqCst);
        let stats = ingest.commit_stats();
        let m = &self.metrics;
        m.commit_batches.store(stats.batches, Ordering::Relaxed);
        m.commit_frames.store(stats.frames, Ordering::Relaxed);
        m.commit_fsyncs.store(stats.fsyncs, Ordering::Relaxed);
        m.commit_max_batch
            .store(stats.max_batch_frames, Ordering::Relaxed);
        m.commit_checkpoint_stall_us
            .store(stats.checkpoint_stall_us, Ordering::Relaxed);
    }
}

/// A running query server. Dropping the handle detaches the threads; call
/// [`Server::shutdown`] for a graceful stop or [`Server::join`] to serve
/// until the process exits.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener_thread: Option<std::thread::JoinHandle<()>>,
    worker_threads: Vec<std::thread::JoinHandle<()>>,
    replication_thread: Option<std::thread::JoinHandle<()>>,
    /// Under [`DurabilityMode::Batched`]: fsyncs frames whose deadline
    /// passed without a foreground commit doing it first.
    flusher_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving `db`. Builds the index first if the caller
    /// has not. Returns once the listener and worker pool are running.
    /// The server is read-only: `POST`/`DELETE /documents` answer 403.
    pub fn start(db: Database, config: ServerConfig) -> std::io::Result<Server> {
        Server::start_inner(db, None, ServerRole::Standalone, None, config)
    }

    /// Open (or create) the durable ingestion directory at `dir` — store +
    /// index snapshots, checkpoint meta, write-ahead log — recover its
    /// state, and serve it live: `POST /documents?name=X` and
    /// `DELETE /documents/{name}` mutate the database under the
    /// single-writer discipline while queries keep reading.
    pub fn start_live(dir: impl Into<PathBuf>, config: ServerConfig) -> std::io::Result<Server> {
        let options = IngestOptions {
            durability: config.durability,
            ..IngestOptions::default()
        };
        let (ingest, db) = Ingest::open(dir, options).map_err(std::io::Error::other)?;
        Server::start_inner(db, Some(ingest), ServerRole::Standalone, None, config)
    }

    /// [`Server::start_live`] as a **shard primary**: the WAL is retained
    /// across checkpoints so `GET /wal?from_lsn=` can serve any suffix of
    /// the op history to followers.
    pub fn start_primary(dir: impl Into<PathBuf>, config: ServerConfig) -> std::io::Result<Server> {
        let options = IngestOptions {
            retain_wal: true,
            durability: config.durability,
            ..IngestOptions::default()
        };
        let (ingest, db) = Ingest::open(dir, options).map_err(std::io::Error::other)?;
        Server::start_inner(db, Some(ingest), ServerRole::Primary, None, config)
    }

    /// Start a **follower replica** over its own durable directory.
    /// Direct writes answer 403; state arrives by pulling the primary's
    /// `/wal?from_lsn=` endpoint and applying each frame through the
    /// follower's own WAL + incremental-maintenance pipeline (so the
    /// follower is itself crash-safe and could be promoted). With
    /// `primary: None` no pull loop runs — tests drive replication by
    /// hand through [`Server::apply_wal_image`].
    pub fn start_follower(
        dir: impl Into<PathBuf>,
        primary: Option<String>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let options = IngestOptions {
            retain_wal: true,
            durability: config.durability,
            ..IngestOptions::default()
        };
        let (ingest, db) = Ingest::open(dir, options).map_err(std::io::Error::other)?;
        Server::start_inner(db, Some(ingest), ServerRole::Follower, primary, config)
    }

    fn start_inner(
        mut db: Database,
        ingest: Option<Ingest>,
        role: ServerRole,
        primary: Option<String>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        if !db.has_index() {
            db.build_index();
        }
        db.set_threads(config.request_threads.max(1));
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let (applied_lsn, checkpoint_seq, wal_len, durable_lsn) = ingest
            .as_ref()
            .map(|i| {
                (
                    i.last_lsn(),
                    i.checkpoint_seq(),
                    i.wal_len(),
                    i.durable_lsn(),
                )
            })
            .unwrap_or((0, 0, 0, 0));
        let shared = Arc::new(Shared {
            db: RwLock::new(db),
            ingest,
            checkpoint_health: Mutex::new(None),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            metrics: Metrics::new(workers),
            queue: BoundedQueue::new(config.queue_capacity),
            limits: Limits {
                max_body: config.max_body,
            },
            default_deadline: Duration::from_millis(config.default_deadline_ms.max(1)),
            debug_endpoints: config.debug_endpoints,
            shutdown: AtomicBool::new(false),
            role,
            applied_lsn: AtomicU64::new(applied_lsn),
            checkpoint_seq: AtomicU64::new(checkpoint_seq),
            wal_len: AtomicU64::new(wal_len),
            durable_lsn: AtomicU64::new(durable_lsn),
        });

        let mut worker_threads = Vec::with_capacity(workers);
        for _ in 0..workers {
            let shared = Arc::clone(&shared);
            worker_threads.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        let accept_shared = Arc::clone(&shared);
        let listener_thread = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        let replication_thread = primary.map(|primary| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || replication_loop(&shared, &primary))
        });
        let flusher_thread = match shared.ingest.as_ref().map(Ingest::durability) {
            Some(DurabilityMode::Batched { max_delay }) => {
                let shared = Arc::clone(&shared);
                // Half the deadline so no frame waits much past it.
                let tick = (max_delay / 2).max(Duration::from_millis(1));
                Some(std::thread::spawn(move || flusher_loop(&shared, tick)))
            }
            _ => None,
        };

        Ok(Server {
            addr,
            shared,
            listener_thread: Some(listener_thread),
            worker_threads,
            replication_thread,
            flusher_thread,
        })
    }

    /// The bound address (with the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current `/metrics` document, without a request.
    pub fn metrics_json(&self) -> String {
        self.shared.metrics.to_json()
    }

    /// This node's role.
    pub fn role(&self) -> ServerRole {
        self.shared.role
    }

    /// The last applied LSN (0 for a read-only in-memory server).
    pub fn applied_lsn(&self) -> u64 {
        self.shared.applied_lsn.load(Ordering::SeqCst)
    }

    /// The highest fsynced LSN — what survives a crash right now. Equals
    /// [`Server::applied_lsn`] under [`DurabilityMode::Strict`] at rest;
    /// may trail it under `Batched`/`Flush`.
    pub fn durable_lsn(&self) -> u64 {
        self.shared.durable_lsn.load(Ordering::SeqCst)
    }

    /// Apply a pulled WAL image (header + CRC frames) to this node —
    /// the follower's replication step, exposed so tests can inject
    /// hand-built (including deliberately corrupted) transfer payloads.
    /// Returns the number of newly applied records.
    ///
    /// The image is run through the same prefix-durability scanner as a
    /// local WAL file: a torn or bit-flipped tail yields only the
    /// committed prefix, so a corrupt frame is never applied. Frames at
    /// or below the applied LSN are skipped (pull overlap is harmless);
    /// a frame that skips past `applied + 1` is a hard error.
    pub fn apply_wal_image(&self, bytes: &[u8]) -> Result<u64, String> {
        apply_wal_image(&self.shared, bytes)
    }

    /// Mutate the database (e.g. load fresh documents and rebuild the
    /// index) while serving. Takes the write lock — in-flight queries
    /// finish first, new ones wait — and the generation bump performed by
    /// the mutation invalidates every cached result by key.
    pub fn reload<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        let mut db = write_lock(&self.shared.db);
        f(&mut db)
    }

    /// Graceful shutdown: refuse new connections, drain the admission
    /// queue, finish in-flight requests, join every thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(handle) = self.listener_thread.take() {
            let _ = handle.join();
        }
        // The listener no longer admits; close the queue so workers drain
        // the remaining jobs and exit.
        self.shared.queue.close();
        for handle in self.worker_threads.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.replication_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.flusher_thread.take() {
            let _ = handle.join();
        }
        // Leave nothing riding on the next timer tick: a clean shutdown
        // makes every acknowledged mutation durable, whatever the mode.
        if let Some(ingest) = &self.shared.ingest {
            let _ = ingest.flush();
        }
    }

    /// Serve until the process exits (the CLI `serve` command's main
    /// loop). Never returns under normal operation.
    pub fn join(mut self) {
        if let Some(handle) = self.listener_thread.take() {
            let _ = handle.join();
        }
        self.shared.queue.close();
        for handle in self.worker_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Recover a read guard even if a panicking holder poisoned the lock — the
/// database itself is only mutated under `reload`, which keeps it valid.
fn read_lock(lock: &RwLock<Database>) -> std::sync::RwLockReadGuard<'_, Database> {
    lock.read().unwrap_or_else(|p| p.into_inner())
}

fn write_lock(lock: &RwLock<Database>) -> std::sync::RwLockWriteGuard<'_, Database> {
    lock.write().unwrap_or_else(|p| p.into_inner())
}

fn lock_cache(cache: &Mutex<ResultCache>) -> std::sync::MutexGuard<'_, ResultCache> {
    cache.lock().unwrap_or_else(|p| p.into_inner())
}

fn lock_health(health: &Mutex<Option<String>>) -> std::sync::MutexGuard<'_, Option<String>> {
    health.lock().unwrap_or_else(|p| p.into_inner())
}

/// The `Batched`-mode background flusher: wake twice per `max_delay` and
/// fsync any frame whose deadline passed without a foreground commit
/// covering it. Errors poison the pipeline (subsequent mutations answer
/// 500); nothing to do here but keep the durable-LSN mirror fresh.
fn flusher_loop(shared: &Shared, tick: Duration) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        if let Some(ingest) = &shared.ingest {
            if let Ok(Some(_)) = ingest.flush_if_due() {
                shared.publish_ingest_state(ingest);
            }
        }
        std::thread::sleep(tick);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        if shared.shutdown.load(Ordering::SeqCst) {
            refuse(shared, stream, "server is shutting down", false);
            break;
        }
        shared
            .metrics
            .requests_total
            .fetch_add(1, Ordering::Relaxed);
        let job = Job {
            stream,
            admitted: Instant::now(),
        };
        match shared.queue.try_push(job) {
            Ok(depth) => {
                shared.metrics.queue_depth.store(depth, Ordering::Relaxed);
            }
            Err(PushError::Full(job)) => {
                shared
                    .metrics
                    .rejected_saturated
                    .fetch_add(1, Ordering::Relaxed);
                refuse(shared, job.stream, "admission queue full", true);
            }
            Err(PushError::Closed(job)) => {
                refuse(shared, job.stream, "server is shutting down", false);
            }
        }
    }
}

/// Answer 503 directly from the accept loop — overload and shutdown never
/// touch the worker pool.
fn refuse(shared: &Shared, mut stream: TcpStream, message: &str, retryable: bool) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut response = Response::error(503, message);
    if retryable {
        response = response.with_header("Retry-After", "1".to_string());
    }
    shared.metrics.record_status(503);
    let _ = response.write_to(&mut stream);
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        shared
            .metrics
            .queue_depth
            .store(shared.queue.len(), Ordering::Relaxed);
        shared.metrics.queue_wait.record(job.admitted.elapsed());
        shared.metrics.workers_busy.fetch_add(1, Ordering::Relaxed);
        // A panic inside one request must not kill the worker: catch it,
        // count a 500, and move on. The engine crates are panic-free by
        // lint policy; this is defense in depth.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(shared, job);
        }));
        if result.is_err() {
            shared.metrics.record_status(500);
        }
        shared.metrics.workers_busy.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The follower's pull loop: ask the primary for the WAL suffix past our
/// applied LSN, apply it, repeat — immediately while catching up, with a
/// short idle sleep once level. Every failure (unreachable primary, gap,
/// bad image) is counted and retried after a backoff; the loop only exits
/// at shutdown.
fn replication_loop(shared: &Arc<Shared>, primary: &str) {
    const IDLE: Duration = Duration::from_millis(25);
    const BACKOFF: Duration = Duration::from_millis(250);
    const PULL_TIMEOUT: Duration = Duration::from_secs(5);
    while !shared.shutdown.load(Ordering::SeqCst) {
        let from = shared.applied_lsn.load(Ordering::SeqCst);
        let path = format!("/wal?from_lsn={from}&max_bytes={WAL_PULL_MAX_BYTES}");
        let pulled = http::client_request(primary, "GET", &path, &[], PULL_TIMEOUT);
        let pause = match pulled {
            Ok((200, bytes)) => {
                shared
                    .metrics
                    .replication_pulls
                    .fetch_add(1, Ordering::Relaxed);
                match apply_wal_image(shared, &bytes) {
                    Ok(applied) if applied > 0 => Duration::ZERO,
                    Ok(_) => IDLE,
                    Err(_) => {
                        shared
                            .metrics
                            .replication_errors
                            .fetch_add(1, Ordering::Relaxed);
                        BACKOFF
                    }
                }
            }
            Ok(_) | Err(_) => {
                shared
                    .metrics
                    .replication_errors
                    .fetch_add(1, Ordering::Relaxed);
                BACKOFF
            }
        };
        // Sleep in small slices so shutdown stays responsive.
        let mut left = pause;
        while !left.is_zero() && !shared.shutdown.load(Ordering::SeqCst) {
            let slice = left.min(Duration::from_millis(20));
            std::thread::sleep(slice);
            left = left.saturating_sub(slice);
        }
    }
}

/// Apply one pulled WAL image: stage every record under a single `db`
/// write-lock hold, then commit the batch **once** — the whole image
/// costs one WAL write and (under `Strict`) one fsync instead of one per
/// record. See [`Server::apply_wal_image`] for the contract.
fn apply_wal_image(shared: &Shared, bytes: &[u8]) -> Result<u64, String> {
    let Some(ingest) = &shared.ingest else {
        return Err("read-only server cannot apply replicated writes".to_string());
    };
    // Torn transfers are not errors: the scanner returns the committed
    // prefix and the next pull re-requests the rest. Only a mangled
    // header fails outright.
    let scan = tix_ingest::scan_bytes(bytes).map_err(|e| format!("bad WAL image: {e}"))?;
    let mut db = write_lock(&shared.db);
    let mut applied = 0u64;
    let mut last_ticket = None;
    let mut failure = None;
    for entry in scan.entries {
        let last = ingest.last_lsn();
        if entry.lsn <= last {
            continue;
        }
        if entry.lsn != last + 1 {
            failure = Some(format!(
                "lsn discontinuity: image jumps to {} with {} applied",
                entry.lsn, last
            ));
            break;
        }
        let staged = match &entry.record {
            tix_ingest::WalRecord::AddDocument { name, xml } => {
                ingest.stage_insert(&mut db, name, xml).map(|(_, t)| t)
            }
            tix_ingest::WalRecord::RemoveDocument { name } => {
                ingest.stage_remove(&mut db, name).map(|(_, t)| t)
            }
        };
        match staged {
            Ok(ticket) => {
                last_ticket = Some(ticket);
                applied += 1;
            }
            Err(e) => {
                failure = Some(format!("apply of lsn {} failed: {e}", entry.lsn));
                break;
            }
        }
    }
    drop(db);
    // Committing the newest ticket covers every earlier staged frame —
    // the leader flushes the whole pending batch. Runs even on a partial
    // failure: what was applied in memory must reach the log.
    if let Some(ticket) = last_ticket {
        if let Err(e) = ingest.commit(ticket) {
            shared.publish_ingest_state(ingest);
            return Err(format!("commit of pulled image failed: {e}"));
        }
    }
    if let Some(e) = failure {
        shared.publish_ingest_state(ingest);
        return Err(e);
    }
    if applied > 0 {
        shared
            .metrics
            .replication_records
            .fetch_add(applied, Ordering::Relaxed);
        checkpoint_after_mutation(shared, ingest);
    }
    shared.publish_ingest_state(ingest);
    Ok(applied)
}

fn handle_connection(shared: &Shared, job: Job) {
    let Job { stream, admitted } = job;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let Ok(reader_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_half);
    let mut stream = stream;
    let response = match http::read_request(&mut reader, &shared.limits) {
        Ok(request) => respond(shared, &request, admitted),
        Err(e) => {
            let (status, _) = e.status();
            Response::error(status, &e.to_string())
        }
    };
    shared.metrics.record_status(response.status);
    if response.status == 504 {
        shared
            .metrics
            .deadline_expired
            .fetch_add(1, Ordering::Relaxed);
    }
    let _ = response.write_to(&mut stream);
    shared.metrics.latency.record(admitted.elapsed());
}

/// Per-request deadline: the default, lowered by a `deadline_ms` query
/// parameter. Anchored at admission time, so queue wait counts against it.
fn deadline_of(shared: &Shared, request: &Request, admitted: Instant) -> Result<Instant, Response> {
    let budget = match request.query_param("deadline_ms") {
        Some(raw) => {
            let ms: u64 = raw
                .parse()
                .map_err(|_| Response::error(400, &format!("bad deadline_ms {raw:?}")))?;
            Duration::from_millis(ms.max(1)).min(shared.default_deadline)
        }
        None => shared.default_deadline,
    };
    Ok(admitted + budget)
}

fn parse_f64(request: &Request, name: &str, default: f64) -> Result<f64, Response> {
    match request.query_param(name) {
        Some(raw) => raw
            .parse()
            .map_err(|_| Response::error(400, &format!("bad {name} {raw:?}"))),
        None => Ok(default),
    }
}

/// An optional float parameter: `None` when absent (no default — absence
/// is meaningful, e.g. "no min_score filter" differs from "filter at 0").
fn parse_opt_f64(request: &Request, name: &str) -> Result<Option<f64>, Response> {
    match request.query_param(name) {
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| Response::error(400, &format!("bad {name} {raw:?}"))),
        None => Ok(None),
    }
}

/// The cache-key encoding of an optional `min_score`: bit-exact when
/// present, `u64::MAX` (an unreachable NaN pattern for parsed floats)
/// when absent — `None` and `Some(0.0)` must never share an entry.
fn min_score_bits(min_score: Option<f64>) -> u64 {
    min_score.map_or(u64::MAX, f64::to_bits)
}

fn parse_u64(request: &Request, name: &str, default: u64) -> Result<u64, Response> {
    match request.query_param(name) {
        Some(raw) => raw
            .parse()
            .map_err(|_| Response::error(400, &format!("bad {name} {raw:?}"))),
        None => Ok(default),
    }
}

fn parse_usize(request: &Request, name: &str, default: usize) -> Result<usize, Response> {
    match request.query_param(name) {
        Some(raw) => raw
            .parse()
            .map_err(|_| Response::error(400, &format!("bad {name} {raw:?}"))),
        None => Ok(default),
    }
}

fn pick_params(request: &Request) -> Result<PickParams, Response> {
    Ok(PickParams {
        relevance_threshold: parse_f64(request, "threshold", 0.5)?,
        fraction: parse_f64(request, "fraction", 0.5)?,
    })
}

fn respond(shared: &Shared, request: &Request, admitted: Instant) -> Response {
    let deadline = match deadline_of(shared, request, admitted) {
        Ok(deadline) => deadline,
        Err(response) => return response,
    };
    let counters = &shared.metrics.endpoints;
    let bump = |c: &std::sync::atomic::AtomicU64| {
        c.fetch_add(1, Ordering::Relaxed);
    };
    // LSN-watermark gating: a read carrying `min_lsn=N` must see state at
    // least that fresh. A behind replica answers 403 so the coordinator
    // retries elsewhere (ultimately the primary) instead of serving a
    // stale — potentially divergent — result.
    if matches!(
        (request.method.as_str(), request.path.as_str()),
        (
            "GET",
            "/search" | "/phrase" | "/cluster/search" | "/cluster/phrase"
        ) | ("POST", "/search/batch" | "/query")
    ) {
        if let Some(response) = stale_reject(shared, request) {
            return response;
        }
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => {
            bump(&counters.health);
            handle_health(shared)
        }
        ("GET", "/metrics") => {
            bump(&counters.metrics);
            Response::json(200, shared.metrics.to_json())
        }
        ("GET", "/search") => {
            bump(&counters.search);
            handle_search(shared, request, deadline)
        }
        ("GET", "/phrase") => {
            bump(&counters.phrase);
            handle_phrase(shared, request, deadline)
        }
        ("GET", "/explain") => {
            bump(&counters.explain);
            handle_explain(shared, request)
        }
        ("GET", "/wal") => {
            bump(&counters.wal);
            handle_wal(shared, request)
        }
        ("GET", "/cluster/search") => {
            bump(&counters.cluster);
            handle_cluster_search(shared, request, deadline)
        }
        ("GET", "/cluster/phrase") => {
            bump(&counters.cluster);
            handle_cluster_phrase(shared, request, deadline)
        }
        ("POST", "/search/batch") => {
            bump(&counters.batch);
            handle_batch(shared, request, deadline)
        }
        ("POST", "/query") => {
            bump(&counters.query);
            handle_query(shared, request, deadline)
        }
        ("POST", "/documents") => {
            bump(&counters.documents);
            handle_insert_document(shared, request)
        }
        ("DELETE", path) if path.starts_with("/documents/") => {
            bump(&counters.documents);
            let name = path.strip_prefix("/documents/").unwrap_or("");
            handle_remove_document(shared, name)
        }
        ("POST", "/admin/checkpoint") => {
            bump(&counters.other);
            handle_admin_checkpoint(shared)
        }
        ("GET", "/debug/sleep") if shared.debug_endpoints => {
            bump(&counters.other);
            handle_sleep(request, deadline)
        }
        (
            _,
            "/health" | "/metrics" | "/search" | "/phrase" | "/explain" | "/wal"
            | "/cluster/search" | "/cluster/phrase",
        ) => {
            bump(&counters.other);
            Response::error(405, "method not allowed").with_header("Allow", "GET".to_string())
        }
        (_, "/search/batch" | "/query" | "/documents" | "/admin/checkpoint") => {
            bump(&counters.other);
            Response::error(405, "method not allowed").with_header("Allow", "POST".to_string())
        }
        (_, path) if path.starts_with("/documents/") => {
            bump(&counters.other);
            Response::error(405, "method not allowed").with_header("Allow", "DELETE".to_string())
        }
        (_, path) => {
            bump(&counters.other);
            Response::error(404, &format!("no such endpoint {path:?}"))
        }
    }
}

fn handle_health(shared: &Shared) -> Response {
    let db = read_lock(&shared.db);
    let durability = shared
        .ingest
        .as_ref()
        .map_or("null".to_string(), |i| format!("\"{}\"", i.durability()));
    let degraded = match lock_health(&shared.checkpoint_health).as_deref() {
        Some(reason) => format!("true,\"checkpoint_error\":{}", render::json_string(reason)),
        None => "false".to_string(),
    };
    Response::json(
        200,
        format!(
            "{{\"status\":\"ok\",\"role\":\"{}\",\"docs\":{},\"nodes\":{},\"generation\":{},\"applied_lsn\":{},\"durable_lsn\":{},\"checkpoint_seq\":{},\"wal_len\":{},\"durability\":{durability},\"checkpoint_degraded\":{degraded},\"workers\":{}}}",
            shared.role.as_str(),
            db.store().doc_count(),
            db.store().node_count(),
            db.generation(),
            shared.applied_lsn.load(Ordering::SeqCst),
            shared.durable_lsn.load(Ordering::SeqCst),
            shared.checkpoint_seq.load(Ordering::SeqCst),
            shared.wal_len.load(Ordering::SeqCst),
            shared.metrics.workers_total
        ),
    )
}

/// Evaluate the `min_lsn` watermark for a read. `Some(403)` when this
/// node has not yet applied the required LSN.
fn stale_reject(shared: &Shared, request: &Request) -> Option<Response> {
    let raw = request.query_param("min_lsn")?;
    let Ok(min_lsn) = raw.parse::<u64>() else {
        return Some(Response::error(400, &format!("bad min_lsn {raw:?}")));
    };
    let applied = shared.applied_lsn.load(Ordering::SeqCst);
    if applied >= min_lsn {
        return None;
    }
    shared.metrics.stale_rejects.fetch_add(1, Ordering::Relaxed);
    Some(Response::json(
        403,
        format!(
            "{{\"error\":\"replica behind watermark\",\"applied_lsn\":{applied},\"min_lsn\":{min_lsn},\"role\":\"{}\"}}",
            shared.role.as_str()
        ),
    ))
}

/// `GET /wal?from_lsn=N[&max_bytes=M]` — the replication feed: a binary
/// WAL image holding the committed frames strictly after `N`, capped
/// near `M` bytes but never splitting a frame. 410 with the earliest
/// servable LSN when the suffix was checkpointed away (the follower must
/// resync), 403 on a server without a durable directory.
fn handle_wal(shared: &Shared, request: &Request) -> Response {
    let Some(ingest) = &shared.ingest else {
        return Response::error(403, "read-only server has no WAL");
    };
    let from_lsn = match parse_u64(request, "from_lsn", 0) {
        Ok(v) => v,
        Err(response) => return response,
    };
    let max_bytes = match parse_u64(request, "max_bytes", WAL_PULL_MAX_BYTES) {
        Ok(v) => v.min(WAL_PULL_MAX_BYTES),
        Err(response) => return response,
    };
    match ingest.wal_suffix(from_lsn, max_bytes) {
        Ok(image) => Response::binary(200, image),
        Err(IngestError::WalGap {
            requested,
            earliest,
        }) => Response::json(
            410,
            format!("{{\"error\":\"wal gap\",\"requested\":{requested},\"earliest\":{earliest}}}"),
        ),
        Err(e) => Response::error(500, &e.to_string()),
    }
}

/// `POST /admin/checkpoint` — force a checkpoint now (the cluster CLI and
/// the differential harness use this to exercise checkpoint interleavings
/// without waiting for the size trigger).
fn handle_admin_checkpoint(shared: &Shared) -> Response {
    let Some(ingest) = &shared.ingest else {
        return Response::error(403, "read-only server has nothing to checkpoint");
    };
    // Begin under the db write lock (quiesce + O(docs) freeze), complete
    // — the snapshot IO — after releasing it, so queries and writers run
    // through the slow part.
    let prepared = {
        let mut db = write_lock(&shared.db);
        ingest.begin_checkpoint(&mut db)
    };
    let completed = prepared.and_then(|p| ingest.complete_checkpoint(p));
    match completed {
        Ok(seq) => {
            record_checkpoint_success(shared);
            shared.publish_ingest_state(ingest);
            Response::json(
                200,
                format!("{{\"checkpoint\":{seq},\"lsn\":{}}}", ingest.last_lsn()),
            )
        }
        Err(e) => {
            record_checkpoint_failure(shared, &e);
            Response::error(500, &e.to_string())
        }
    }
}

/// `GET /cluster/search?q=…&k=…` — the scatter-gather shard endpoint:
/// top-k **with ties** plus the exclusive §4.2 bound on withheld scores,
/// every score as raw `f64` bits, and results addressed by document
/// *name* + node index (both shard-layout-independent, unlike `DocId`).
fn handle_cluster_search(shared: &Shared, request: &Request, deadline: Instant) -> Response {
    let terms = match terms_of(request) {
        Ok(terms) => terms,
        Err(response) => return response,
    };
    let k = match parse_usize(request, "k", 10) {
        Ok(k) => k,
        Err(response) => return response,
    };
    let pick = match pick_params(request) {
        Ok(pick) => pick,
        Err(response) => return response,
    };
    if expired(deadline) {
        return Response::error(504, "deadline exceeded");
    }
    let db = read_lock(&shared.db);
    let term_refs: Vec<&str> = terms.iter().map(String::as_str).collect();
    let (results, bound) = db.search_with_ties(&term_refs, pick, k);
    if expired(deadline) {
        return Response::error(504, "deadline exceeded");
    }
    let items: Vec<String> = results
        .iter()
        .map(|s| {
            let store = db.store();
            let snippet: String = store
                .text_content(s.node)
                .chars()
                .take(render::SNIPPET_CHARS)
                .collect();
            format!(
                "{{\"name\":{},\"node_idx\":{},\"score_bits\":{},\"tag\":{},\"text\":{}}}",
                render::json_string(store.doc(s.node.doc).name()),
                s.node.node.0,
                s.score.to_bits(),
                store
                    .tag_name(s.node)
                    .map(render::json_string)
                    .unwrap_or_else(|| "null".to_string()),
                render::json_string(&snippet)
            )
        })
        .collect();
    let bound_bits = bound.map_or("null".to_string(), |b| b.to_bits().to_string());
    Response::json(
        200,
        format!(
            "{{\"generation\":{},\"applied_lsn\":{},\"count\":{},\"bound_bits\":{bound_bits},\"results\":[{}]}}",
            db.generation(),
            shared.applied_lsn.load(Ordering::SeqCst),
            items.len(),
            items.join(",")
        ),
    )
}

/// `GET /cluster/phrase?q=…` — shard endpoint for phrase scatter-gather:
/// every match (phrase results are not top-k), occurrence counts as raw
/// score bits, addressed by name + node index.
fn handle_cluster_phrase(shared: &Shared, request: &Request, deadline: Instant) -> Response {
    let terms = match terms_of(request) {
        Ok(terms) => terms,
        Err(response) => return response,
    };
    if terms.len() < 2 {
        return Response::error(400, "phrase needs at least two terms");
    }
    if expired(deadline) {
        return Response::error(504, "deadline exceeded");
    }
    let db = read_lock(&shared.db);
    let term_refs: Vec<&str> = terms.iter().map(String::as_str).collect();
    let matches = db.find_phrase(&term_refs);
    if expired(deadline) {
        return Response::error(504, "deadline exceeded");
    }
    let items: Vec<String> = matches
        .iter()
        .map(|m| {
            format!(
                "{{\"name\":{},\"node_idx\":{},\"occ_bits\":{}}}",
                render::json_string(db.store().doc(m.node.doc).name()),
                m.node.node.0,
                m.score.to_bits()
            )
        })
        .collect();
    Response::json(
        200,
        format!(
            "{{\"generation\":{},\"applied_lsn\":{},\"count\":{},\"results\":[{}]}}",
            db.generation(),
            shared.applied_lsn.load(Ordering::SeqCst),
            items.len(),
            items.join(",")
        ),
    )
}

/// Split a `q` parameter into normalized terms; 400 when absent or empty.
fn terms_of(request: &Request) -> Result<Vec<String>, Response> {
    let raw = request
        .query_param("q")
        .ok_or_else(|| Response::error(400, "missing q parameter"))?;
    let split: Vec<&str> = raw.split_whitespace().collect();
    let terms = normalize_query(&split);
    if terms.is_empty() {
        return Err(Response::error(400, "q has no terms"));
    }
    Ok(terms)
}

fn expired(deadline: Instant) -> bool {
    Instant::now() >= deadline
}

fn handle_search(shared: &Shared, request: &Request, deadline: Instant) -> Response {
    let terms = match terms_of(request) {
        Ok(terms) => terms,
        Err(response) => return response,
    };
    let k = match parse_usize(request, "k", 10) {
        Ok(k) => k,
        Err(response) => return response,
    };
    let pick = match pick_params(request) {
        Ok(pick) => pick,
        Err(response) => return response,
    };
    let min_score = match parse_opt_f64(request, "min_score") {
        Ok(min_score) => min_score,
        Err(response) => return response,
    };
    let db = read_lock(&shared.db);
    let generation = db.generation();
    let key = QueryKey {
        kind: QueryKind::Search,
        terms: terms.clone(),
        threshold_bits: pick.relevance_threshold.to_bits(),
        fraction_bits: pick.fraction.to_bits(),
        min_score_bits: min_score_bits(min_score),
        k,
        generation,
    };
    if let Some(body) = lock_cache(&shared.cache).get(&key, generation) {
        shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        return Response::json(200, body);
    }
    shared.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    let term_refs: Vec<&str> = terms.iter().map(String::as_str).collect();
    let cancelled = || expired(deadline);
    match db.search_filtered(&term_refs, pick, k, min_score, &cancelled) {
        Some(results) => {
            let body = render::search_body(db.store(), &terms, pick, k, &results);
            lock_cache(&shared.cache).insert(key, body.clone());
            Response::json(200, body)
        }
        None => Response::error(504, "deadline exceeded"),
    }
}

fn handle_phrase(shared: &Shared, request: &Request, deadline: Instant) -> Response {
    let terms = match terms_of(request) {
        Ok(terms) => terms,
        Err(response) => return response,
    };
    if terms.len() < 2 {
        return Response::error(400, "phrase needs at least two terms");
    }
    let db = read_lock(&shared.db);
    let generation = db.generation();
    let key = QueryKey {
        kind: QueryKind::Phrase,
        terms: terms.clone(),
        threshold_bits: 0,
        fraction_bits: 0,
        min_score_bits: u64::MAX,
        k: 0,
        generation,
    };
    if let Some(body) = lock_cache(&shared.cache).get(&key, generation) {
        shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        return Response::json(200, body);
    }
    shared.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    if expired(deadline) {
        return Response::error(504, "deadline exceeded");
    }
    let term_refs: Vec<&str> = terms.iter().map(String::as_str).collect();
    let matches = db.find_phrase(&term_refs);
    if expired(deadline) {
        return Response::error(504, "deadline exceeded");
    }
    let body = render::phrase_body(db.store(), &terms, &matches);
    lock_cache(&shared.cache).insert(key, body.clone());
    Response::json(200, body)
}

/// `GET /explain?q=…` — the planner's view of the query: gathered
/// statistics, every costed candidate plan, and the chosen access method.
/// Same parameters as `/search`; never cached (it *describes* planning
/// rather than running the query, and must reflect current statistics).
fn handle_explain(shared: &Shared, request: &Request) -> Response {
    let terms = match terms_of(request) {
        Ok(terms) => terms,
        Err(response) => return response,
    };
    let k = match parse_usize(request, "k", 10) {
        Ok(k) => k,
        Err(response) => return response,
    };
    let pick = match pick_params(request) {
        Ok(pick) => pick,
        Err(response) => return response,
    };
    let min_score = match parse_opt_f64(request, "min_score") {
        Ok(min_score) => min_score,
        Err(response) => return response,
    };
    let db = read_lock(&shared.db);
    let term_refs: Vec<&str> = terms.iter().map(String::as_str).collect();
    let text = db.explain(&term_refs, pick, k, min_score);
    Response::json(
        200,
        format!("{{\"explain\":{}}}", render::json_string(&text)),
    )
}

fn handle_batch(shared: &Shared, request: &Request, deadline: Instant) -> Response {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "batch body is not UTF-8");
    };
    let queries: Vec<Vec<String>> = text
        .lines()
        .filter(|line| !line.trim().is_empty())
        .map(|line| {
            let split: Vec<&str> = line.split_whitespace().collect();
            normalize_query(&split)
        })
        .collect();
    if queries.is_empty() {
        return Response::error(400, "batch body has no queries (one per line)");
    }
    if queries.len() > MAX_BATCH_QUERIES {
        return Response::error(
            400,
            &format!(
                "batch of {} exceeds the {MAX_BATCH_QUERIES}-query cap",
                queries.len()
            ),
        );
    }
    let k = match parse_usize(request, "k", 10) {
        Ok(k) => k,
        Err(response) => return response,
    };
    let pick = match pick_params(request) {
        Ok(pick) => pick,
        Err(response) => return response,
    };
    if expired(deadline) {
        return Response::error(504, "deadline exceeded");
    }
    let db = read_lock(&shared.db);
    let query_refs: Vec<Vec<&str>> = queries
        .iter()
        .map(|q| q.iter().map(String::as_str).collect())
        .collect();
    let results = db.search_batch(&query_refs, pick, k);
    if expired(deadline) {
        return Response::error(504, "deadline exceeded");
    }
    Response::json(
        200,
        render::batch_body(db.store(), &queries, pick, k, &results),
    )
}

fn handle_query(shared: &Shared, request: &Request, deadline: Instant) -> Response {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "query body is not UTF-8");
    };
    if text.trim().is_empty() {
        return Response::error(400, "query body is empty");
    }
    if expired(deadline) {
        return Response::error(504, "deadline exceeded");
    }
    let db = read_lock(&shared.db);
    match run_query(db.store(), text) {
        Ok(items) => Response::json(200, render::query_body(&items)),
        Err(e) => Response::error(400, &e.to_string()),
    }
}

/// The response both document mutations share: what changed, the WAL
/// position, how much of the log is fsynced, the new generation, and the
/// checkpoint sequence when the size threshold fired. `durable_lsn >=
/// lsn` means this mutation survives a crash; under `Batched`/`Flush` it
/// may still be pending.
fn mutation_body(
    action: &str,
    name: &str,
    doc: u32,
    lsn: u64,
    durable_lsn: u64,
    generation: u64,
    checkpoint: Option<u64>,
) -> String {
    let checkpoint = match checkpoint {
        Some(seq) => format!(",\"checkpoint\":{seq}"),
        None => String::new(),
    };
    format!(
        "{{\"{action}\":{},\"doc\":{doc},\"lsn\":{lsn},\"durable_lsn\":{durable_lsn},\"generation\":{generation}{checkpoint}}}",
        render::json_string(name)
    )
}

fn record_checkpoint_success(shared: &Shared) {
    shared
        .metrics
        .ingest_checkpoints
        .fetch_add(1, Ordering::Relaxed);
    *lock_health(&shared.checkpoint_health) = None;
}

fn record_checkpoint_failure(shared: &Shared, e: &IngestError) {
    shared
        .metrics
        .ingest_checkpoint_errors
        .fetch_add(1, Ordering::Relaxed);
    *lock_health(&shared.checkpoint_health) = Some(e.to_string());
}

/// Run the size-threshold checkpoint check after a successful mutation:
/// begin (quiesce + freeze) under a fresh short `db` write-lock hold,
/// complete (snapshot IO) with no lock held. A checkpoint failure never
/// fails the request — the mutation is already durable in the WAL; the
/// log keeps growing and `/health` turns `checkpoint_degraded` until a
/// later attempt succeeds.
fn checkpoint_after_mutation(shared: &Shared, ingest: &Ingest) -> Option<u64> {
    let prepared = {
        let mut db = write_lock(&shared.db);
        match ingest.maybe_begin_checkpoint(&mut db) {
            Ok(Some(prepared)) => prepared,
            Ok(None) => return None,
            Err(e) => {
                record_checkpoint_failure(shared, &e);
                return None;
            }
        }
    };
    match ingest.complete_checkpoint(prepared) {
        Ok(seq) => {
            record_checkpoint_success(shared);
            Some(seq)
        }
        Err(e) => {
            record_checkpoint_failure(shared, &e);
            None
        }
    }
}

/// Map a write-path failure to a status: 503 + Retry-After for a full
/// commit queue (back-pressure, not damage), 500 for everything else —
/// including a poisoned pipeline, where every subsequent mutation fails
/// until a restart recovers the durable prefix.
fn ingest_error_response(e: &IngestError) -> Response {
    if let IngestError::Io(io) = e {
        if io.kind() == std::io::ErrorKind::WouldBlock {
            return Response::error(503, &e.to_string())
                .with_header("Retry-After", "1".to_string());
        }
    }
    Response::error(500, &e.to_string())
}

/// `POST /documents?name=X` with the XML document as the body: log the
/// insertion to the WAL, apply it through incremental index maintenance,
/// and answer 201 — or 409 on a duplicate name, 400 on bad input, 403 on
/// a read-only server.
fn handle_insert_document(shared: &Shared, request: &Request) -> Response {
    let Some(ingest) = &shared.ingest else {
        return Response::error(403, "read-only server: ingestion needs a durable directory");
    };
    if shared.role == ServerRole::Follower {
        return Response::error(403, "follower replica: writes go to the primary");
    }
    let Some(name) = request.query_param("name") else {
        return Response::error(400, "missing name parameter");
    };
    if name.is_empty() {
        return Response::error(400, "name must not be empty");
    }
    let Ok(xml) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "document body is not UTF-8");
    };
    if xml.trim().is_empty() {
        return Response::error(400, "document body is empty");
    }
    // Stage under the db write lock, commit after releasing it: workers
    // blocked here on their own mutations stage into the same batch and
    // one leader fsyncs for all of them (see the `Shared` contract).
    let (staged, generation) = {
        let mut db = write_lock(&shared.db);
        (ingest.stage_insert(&mut db, name, xml), db.generation())
    };
    match staged {
        Ok((id, ticket)) => match ingest.commit(ticket) {
            Ok(ack) => {
                shared
                    .metrics
                    .ingest_inserts
                    .fetch_add(1, Ordering::Relaxed);
                let checkpoint = checkpoint_after_mutation(shared, ingest);
                shared.publish_ingest_state(ingest);
                Response::json(
                    201,
                    mutation_body(
                        "inserted",
                        name,
                        id.0,
                        ack.lsn,
                        ack.durable_lsn,
                        generation,
                        checkpoint,
                    ),
                )
            }
            Err(e) => {
                shared.publish_ingest_state(ingest);
                ingest_error_response(&e)
            }
        },
        Err(IngestError::Load(LoadError::DuplicateName(_))) => {
            Response::error(409, &format!("document {name:?} already exists"))
        }
        Err(IngestError::Load(e)) => Response::error(400, &e.to_string()),
        Err(e) => ingest_error_response(&e),
    }
}

/// `DELETE /documents/{name}`: log the removal, apply it (dropping the
/// document's postings and renumbering), and answer 200 — or 404 for an
/// unknown name, 403 on a read-only server.
fn handle_remove_document(shared: &Shared, name: &str) -> Response {
    let Some(ingest) = &shared.ingest else {
        return Response::error(403, "read-only server: ingestion needs a durable directory");
    };
    if shared.role == ServerRole::Follower {
        return Response::error(403, "follower replica: writes go to the primary");
    }
    if name.is_empty() {
        return Response::error(400, "missing document name in path");
    }
    let (staged, generation) = {
        let mut db = write_lock(&shared.db);
        (ingest.stage_remove(&mut db, name), db.generation())
    };
    match staged {
        Ok((id, ticket)) => match ingest.commit(ticket) {
            Ok(ack) => {
                shared
                    .metrics
                    .ingest_removes
                    .fetch_add(1, Ordering::Relaxed);
                let checkpoint = checkpoint_after_mutation(shared, ingest);
                shared.publish_ingest_state(ingest);
                Response::json(
                    200,
                    mutation_body(
                        "removed",
                        name,
                        id.0,
                        ack.lsn,
                        ack.durable_lsn,
                        generation,
                        checkpoint,
                    ),
                )
            }
            Err(e) => {
                shared.publish_ingest_state(ingest);
                ingest_error_response(&e)
            }
        },
        Err(IngestError::Remove(RemoveError::NotFound(_))) => {
            Response::error(404, &format!("no document named {name:?}"))
        }
        Err(e) => ingest_error_response(&e),
    }
}

/// `/debug/sleep?ms=N` — hold a worker for `ms`, checking the deadline
/// cooperatively every few milliseconds. Exists so tests and the load
/// generator can create precise overload and deadline-expiry conditions.
fn handle_sleep(request: &Request, deadline: Instant) -> Response {
    let ms = match parse_usize(request, "ms", 100) {
        Ok(ms) => ms,
        Err(response) => return response,
    };
    let until = Instant::now() + Duration::from_millis(u64::try_from(ms).unwrap_or(u64::MAX));
    while Instant::now() < until {
        if expired(deadline) {
            return Response::error(504, "deadline exceeded");
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    Response::json(200, format!("{{\"slept_ms\":{ms}}}"))
}
