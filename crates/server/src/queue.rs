//! The bounded admission queue between the accept loop and the worker
//! pool.
//!
//! Admission control is the queue's whole point: [`BoundedQueue::try_push`]
//! **never blocks and never grows the backlog past the configured
//! capacity** — when the queue is full the caller gets the job back and
//! answers 503 immediately, so overload sheds load at the door instead of
//! buffering requests whose clients have long since given up.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the job is handed back for a 503.
    Full(T),
    /// The queue is closed (server shutting down); refuse new work.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue over `Mutex` + `Condvar`.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    available: Condvar,
}

impl<T> BoundedQueue<T> {
    /// An open queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            capacity,
            available: Condvar::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        // A poisoning panic elsewhere must not wedge the server; the state
        // (a VecDeque and a bool) is valid at every await point.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueue without blocking. Fails with the item when the queue is at
    /// capacity ([`PushError::Full`]) or closed ([`PushError::Closed`]).
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.available.notify_one();
        Ok(depth)
    }

    /// Dequeue, blocking until an item arrives. Returns `None` only when
    /// the queue is closed **and** drained — workers finish every admitted
    /// job before exiting.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Close the queue: refuse new pushes, wake every blocked popper.
    /// Already-admitted items remain poppable (drain semantics).
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_in_order() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        // Popping one frees a slot.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(2));
    }

    #[test]
    fn capacity_minimum_is_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
    }

    #[test]
    fn close_refuses_new_and_drains_old() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }

    #[test]
    fn cross_thread_handoff() {
        let q = Arc::new(BoundedQueue::new(8));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = q2.pop() {
                got.push(v);
            }
            got
        });
        for i in 0..20 {
            // Spin until admitted — the consumer drains concurrently.
            let mut item = i;
            loop {
                match q.try_push(item) {
                    Ok(_) => break,
                    Err(PushError::Full(back)) => {
                        item = back;
                        std::thread::yield_now();
                    }
                    Err(PushError::Closed(_)) => panic!("queue closed early"),
                }
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }
}
