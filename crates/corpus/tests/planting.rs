//! End-to-end checks that planted frequencies are exact once the corpus is
//! loaded and indexed — the property every benchmark table depends on.

use tix_corpus::{CorpusSpec, Generator, PlantSpec};
use tix_index::InvertedIndex;
use tix_store::Store;

fn build(plants: PlantSpec) -> (Store, InvertedIndex) {
    let generator = Generator::new(CorpusSpec::small(), plants).unwrap();
    let mut store = Store::new();
    generator.load_into(&mut store).unwrap();
    let index = InvertedIndex::build(&store);
    (store, index)
}

#[test]
fn standalone_term_frequencies_are_exact() {
    let plants = PlantSpec::default()
        .with_term("alpha", 1)
        .with_term("beta", 37)
        .with_term("gamma", 500);
    let (_, index) = build(plants);
    assert_eq!(index.collection_frequency("alpha"), 1);
    assert_eq!(index.collection_frequency("beta"), 37);
    assert_eq!(index.collection_frequency("gamma"), 500);
}

#[test]
fn phrase_adjacency_counts_are_exact() {
    let plants = PlantSpec::default().with_phrase("srchx", "engx", 25, 40);
    let (_, index) = build(plants);
    // Total frequency of each term = adjacent + co-occurring plantings.
    assert_eq!(index.collection_frequency("srchx"), 65);
    assert_eq!(index.collection_frequency("engx"), 65);
    // Count exact adjacencies (same text node, consecutive offsets).
    let first = index.postings("srchx");
    let second = index.postings("engx");
    let mut adjacent = 0;
    for p in first {
        if second
            .iter()
            .any(|q| q.doc == p.doc && q.node == p.node && q.offset == p.offset + 1)
        {
            adjacent += 1;
        }
    }
    assert_eq!(adjacent, 25, "planted adjacencies must be exact");
    // Count same-node co-occurrences (what Comp3's intersection sees).
    let mut cooccur_nodes = std::collections::HashSet::new();
    for p in first {
        if second.iter().any(|q| q.doc == p.doc && q.node == p.node) {
            cooccur_nodes.insert((p.doc, p.node));
        }
    }
    // Plantings land in uniformly random paragraphs, so a few may share a
    // paragraph; the distinct-node count is bounded by the planting count
    // and must be close to it.
    assert!(
        (60..=65).contains(&cooccur_nodes.len()),
        "distinct co-occurrence nodes: {}",
        cooccur_nodes.len()
    );
}

#[test]
fn mixed_phrase_and_standalone() {
    // Table 5 style: phrase plantings plus standalone occurrences of the
    // same terms elsewhere.
    let plants = PlantSpec::default()
        .with_phrase("ph0a", "ph0b", 10, 20)
        .with_term("ph0a", 70)
        .with_term("ph0b", 30);
    let (_, index) = build(plants);
    assert_eq!(index.collection_frequency("ph0a"), 100);
    assert_eq!(index.collection_frequency("ph0b"), 60);
}

#[test]
fn background_text_is_skewed() {
    let (_, index) = build(PlantSpec::default());
    // Zipf: the most frequent background word should dominate mid-rank ones.
    let w0 = index.collection_frequency("w0");
    let w50 = index.collection_frequency("w50");
    assert!(w0 > 0 && w50 > 0, "vocabulary should be exercised");
    assert!(w0 > 5 * w50, "w0={w0} w50={w50}");
}

#[test]
fn corpus_shape_is_inexlike() {
    let (store, _) = build(PlantSpec::default());
    let stats = store.stats();
    assert_eq!(stats.documents, 200);
    assert!(stats.max_depth >= 5, "article/bdy/sec/ss1/p nesting");
    let spec = CorpusSpec::small();
    assert_eq!(
        store.elements_with_tag("p").len(),
        spec.paragraph_count(),
        "every paragraph present"
    );
    assert_eq!(store.elements_with_tag("article").len(), spec.articles);
}

#[test]
fn paper_plants_fit_and_load() {
    // Verify the real experiment plant spec at reduced scale loads and the
    // planted frequencies survive exactly.
    let plants = tix_corpus::workloads::paper_plants(0.02);
    let generator = Generator::new(CorpusSpec::small(), plants).unwrap();
    let mut store = Store::new();
    generator.load_into(&mut store).unwrap();
    let index = InvertedIndex::build(&store);
    // qt1000a scaled by 0.02 → exactly 20 occurrences.
    assert_eq!(index.collection_frequency("qt1000a"), 20);
    assert_eq!(index.collection_frequency("qt10000b"), 200);
}
