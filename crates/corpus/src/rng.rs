//! A tiny, fully deterministic PRNG.
//!
//! The experiments must be reproducible bit-for-bit across machines and
//! toolchain versions, so instead of depending on `rand` (whose `StdRng`
//! stream is explicitly not stable across crate versions) we use SplitMix64
//! — a well-known 64-bit mixer with excellent statistical quality for
//! non-cryptographic use.

/// SplitMix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Derive an independent child generator. Used to give every paragraph
    /// its own stream so documents can be generated in any order.
    pub fn fork(&self, salt: u64) -> Rng {
        // Mix the salt through one SplitMix round so forks with adjacent
        // salts are decorrelated.
        let mut child = Rng::new(self.state ^ salt.wrapping_mul(0x9E3779B97F4A7C15));
        child.next_u64();
        Rng::new(child.next_u64())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire-style widening multiply avoids modulo bias well enough for
        // corpus generation (bound ≪ 2^64).
        (((self.next_u64() >> 11) as u128 * bound as u128) >> 53) as u64
    }

    /// Uniform usize in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.index(hi - lo + 1)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_in_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut rng = Rng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn forks_are_decorrelated() {
        let rng = Rng::new(5);
        let mut c1 = rng.fork(0);
        let mut c2 = rng.fork(1);
        let differing = (0..64).filter(|_| c1.next_u64() != c2.next_u64()).count();
        assert!(differing > 60);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }
}
