//! The corpus generator: IEEE-article-shaped XML with planted terms.

use std::fmt;

use tix_store::{DocId, LoadError, Store};
use tix_xml::{Attribute, Writer};

use crate::rng::Rng;
use crate::spec::{CorpusSpec, PlantSpec};
use crate::zipf::Zipf;

/// Salt for the plant-placement RNG stream (independent of text streams).
const PLANT_SALT: u64 = 0x504C414E54; // "PLANT"
/// Salt base for per-article text streams.
const ARTICLE_SALT: u64 = 0x41525431; // "ART1"

/// First-name pool used for `<fnm>` elements.
const FIRST_NAMES: &[&str] = &[
    "jane", "john", "mary", "wei", "anna", "omar", "lena", "ivan",
];
/// Surname pool used for `<snm>` elements. "doe" is present so the paper's
/// Query 2 author predicate (`sname = "Doe"`) selects a real subset.
const SURNAMES: &[&str] = &[
    "doe", "smith", "chen", "garcia", "kumar", "novak", "rossi", "sato",
];

/// Plant-specification validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlantError {
    /// A planted term collides with the background vocabulary namespace
    /// (`w` followed by digits) — its frequency would not be exact.
    CollidesWithVocab(String),
    /// A planted term is not a single lowercase alphanumeric token, so it
    /// would not round-trip through the tokenizer.
    NotAToken(String),
    /// More insertions were requested than the corpus has paragraph slots
    /// to comfortably hold (more than ~8 per paragraph on average).
    TooDense {
        insertions: usize,
        paragraphs: usize,
    },
}

impl fmt::Display for PlantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlantError::CollidesWithVocab(t) => {
                write!(f, "planted term {t:?} collides with background vocabulary")
            }
            PlantError::NotAToken(t) => {
                write!(
                    f,
                    "planted term {t:?} is not a single lowercase alphanumeric token"
                )
            }
            PlantError::TooDense {
                insertions,
                paragraphs,
            } => write!(
                f,
                "{insertions} insertions is too dense for {paragraphs} paragraphs"
            ),
        }
    }
}

impl std::error::Error for PlantError {}

/// One planting operation assigned to a specific paragraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlantOp {
    /// Insert one occurrence of `terms[idx]`.
    Term(u32),
    /// Insert the phrase `phrases[idx].first phrases[idx].second`,
    /// adjacent (`true`) or merely co-occurring (`false`).
    Phrase { idx: u32, adjacent: bool },
}

/// Deterministic corpus generator. See the crate docs for the overall
/// design; the same `(spec, plants)` always generates the same bytes.
pub struct Generator {
    spec: CorpusSpec,
    plants: PlantSpec,
    /// Plant operations per global paragraph index.
    plan: Vec<Vec<PlantOp>>,
    /// Background vocabulary: `vocab[rank]` = `w{rank}`.
    vocab: Vec<String>,
    zipf: Zipf,
    root_rng: Rng,
}

impl Generator {
    /// Validate `plants` and precompute plant placement.
    pub fn new(spec: CorpusSpec, plants: PlantSpec) -> Result<Self, PlantError> {
        let paragraphs = spec.paragraph_count();
        let insertions = plants.total_insertions();
        if insertions > paragraphs.saturating_mul(8) {
            return Err(PlantError::TooDense {
                insertions,
                paragraphs,
            });
        }
        for term in plants.terms.iter().map(|t| t.term.as_str()).chain(
            plants
                .phrases
                .iter()
                .flat_map(|p| [p.first.as_str(), p.second.as_str()]),
        ) {
            if !is_token(term) {
                return Err(PlantError::NotAToken(term.to_string()));
            }
            if in_vocab_namespace(term) {
                return Err(PlantError::CollidesWithVocab(term.to_string()));
            }
        }

        let root_rng = Rng::new(spec.seed);
        let mut plan = vec![Vec::new(); paragraphs];
        let mut plant_rng = root_rng.fork(PLANT_SALT);
        for (i, term) in plants.terms.iter().enumerate() {
            for _ in 0..term.count {
                plan[plant_rng.index(paragraphs)].push(PlantOp::Term(i as u32));
            }
        }
        for (i, phrase) in plants.phrases.iter().enumerate() {
            for _ in 0..phrase.adjacent {
                plan[plant_rng.index(paragraphs)].push(PlantOp::Phrase {
                    idx: i as u32,
                    adjacent: true,
                });
            }
            for _ in 0..phrase.cooccurring {
                plan[plant_rng.index(paragraphs)].push(PlantOp::Phrase {
                    idx: i as u32,
                    adjacent: false,
                });
            }
        }

        let vocab = (0..spec.vocab_size).map(|r| format!("w{r}")).collect();
        let zipf = Zipf::new(spec.vocab_size, spec.zipf_exponent);
        Ok(Generator {
            spec,
            plants,
            plan,
            vocab,
            zipf,
            root_rng,
        })
    }

    /// The corpus shape this generator was built with.
    pub fn spec(&self) -> &CorpusSpec {
        &self.spec
    }

    /// Number of documents (= articles) the corpus contains.
    pub fn document_count(&self) -> usize {
        self.spec.articles
    }

    /// Generate article `i` (0-based). Returns `(document name, xml)`.
    ///
    /// Articles are independent: each uses its own forked RNG stream, so
    /// they may be generated lazily and in any order.
    pub fn document(&self, i: usize) -> (String, String) {
        assert!(i < self.spec.articles, "article index out of range");
        let mut rng = self.root_rng.fork(ARTICLE_SALT.wrapping_add(i as u64));
        let name = format!("article{i:05}.xml");
        let xml = self.article_xml(i, &mut rng);
        (name, xml)
    }

    /// Stream every document lazily, in order. Each `(name, xml)` pair is
    /// generated on demand and dropped by the consumer when done, so the
    /// whole corpus never needs to fit in memory — the way to produce
    /// INEX-scale collections (see [`CorpusSpec::with_target_bytes`]).
    pub fn documents(&self) -> impl Iterator<Item = (String, String)> + '_ {
        (0..self.spec.articles).map(|i| self.document(i))
    }

    /// Generate every document and load it into `store` (streaming: one
    /// generated document is alive at a time besides the store itself).
    pub fn load_into(&self, store: &mut Store) -> Result<Vec<DocId>, LoadError> {
        let mut ids = Vec::with_capacity(self.spec.articles);
        for (name, xml) in self.documents() {
            ids.push(store.load_str(&name, &xml)?);
        }
        Ok(ids)
    }

    // ---- internals ---------------------------------------------------------

    fn article_xml(&self, article: usize, rng: &mut Rng) -> String {
        let spec = &self.spec;
        let mut writer = Writer::with_capacity(
            spec.sections_per_article
                * spec.subsections_per_section
                * spec.paragraphs_per_subsection
                * spec.words_per_paragraph
                * 7,
        );
        writer.start_element(
            "article",
            &[Attribute {
                name: "id".into(),
                value: format!("a{article}"),
            }],
        );
        // Front matter: title and one or two authors.
        writer.start_element("fm", &[]);
        writer.start_element("atl", &[]);
        let title_len = rng.range(4, 8);
        writer.text(&self.background_words(rng, title_len));
        writer.end_element("atl");
        let authors = rng.range(1, 2);
        for a in 0..authors {
            let order = if a == 0 { "first" } else { "other" };
            writer.start_element(
                "au",
                &[Attribute {
                    name: "order".into(),
                    value: order.into(),
                }],
            );
            writer.start_element("fnm", &[]);
            writer.text(FIRST_NAMES[rng.index(FIRST_NAMES.len())]);
            writer.end_element("fnm");
            writer.start_element("snm", &[]);
            writer.text(SURNAMES[rng.index(SURNAMES.len())]);
            writer.end_element("snm");
            writer.end_element("au");
        }
        writer.end_element("fm");
        // Body.
        writer.start_element("bdy", &[]);
        for s in 0..spec.sections_per_article {
            writer.start_element("sec", &[]);
            writer.start_element("st", &[]);
            let st_len = rng.range(2, 5);
            writer.text(&self.background_words(rng, st_len));
            writer.end_element("st");
            for ss in 0..spec.subsections_per_section {
                writer.start_element("ss1", &[]);
                for p in 0..spec.paragraphs_per_subsection {
                    let global = self.paragraph_index(article, s, ss, p);
                    writer.start_element("p", &[]);
                    writer.text(&self.paragraph_text(global, rng));
                    writer.end_element("p");
                }
                writer.end_element("ss1");
            }
            writer.end_element("sec");
        }
        writer.end_element("bdy");
        writer.end_element("article");
        writer.finish()
    }

    /// Global paragraph index of `(article, section, subsection, paragraph)`.
    fn paragraph_index(&self, article: usize, s: usize, ss: usize, p: usize) -> usize {
        ((article * self.spec.sections_per_article + s) * self.spec.subsections_per_section + ss)
            * self.spec.paragraphs_per_subsection
            + p
    }

    fn background_words(&self, rng: &mut Rng, n: usize) -> String {
        let mut out = String::with_capacity(n * 7);
        for i in 0..n {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&self.vocab[self.zipf.sample(rng)]);
        }
        out
    }

    /// Build the text of a paragraph: jittered background words with the
    /// planned plant operations spliced in.
    fn paragraph_text(&self, global: usize, rng: &mut Rng) -> String {
        let w = self.spec.words_per_paragraph;
        let n = rng.range((w / 2).max(4), w + w / 2);
        let mut tokens: Vec<&str> = Vec::with_capacity(n + 4);
        for _ in 0..n {
            tokens.push(&self.vocab[self.zipf.sample(rng)]);
        }
        let ops = &self.plan[global];
        if !ops.is_empty() {
            self.apply_plants(ops, &mut tokens, rng);
        }
        tokens.join(" ")
    }

    fn apply_plants<'a>(&'a self, ops: &[PlantOp], tokens: &mut Vec<&'a str>, rng: &mut Rng) {
        // Phase 1: standalone terms and co-occurring (non-adjacent) pairs.
        for op in ops {
            match *op {
                PlantOp::Term(idx) => {
                    let pos = rng.index(tokens.len() + 1);
                    tokens.insert(pos, &self.plants.terms[idx as usize].term);
                }
                PlantOp::Phrase {
                    idx,
                    adjacent: false,
                } => {
                    let phrase = &self.plants.phrases[idx as usize];
                    let first_pos = rng.index(tokens.len() + 1);
                    tokens.insert(first_pos, &phrase.first);
                    // Choose a slot for `second` that is not immediately
                    // after `first` (which would accidentally form the
                    // phrase).
                    let mut second_pos = rng.index(tokens.len() + 1);
                    while second_pos == first_pos + 1 {
                        second_pos = rng.index(tokens.len() + 1);
                    }
                    tokens.insert(second_pos, &phrase.second);
                }
                PlantOp::Phrase { adjacent: true, .. } => {}
            }
        }
        // Phase 2: adjacent pairs, inserted right-to-left at distinct gaps so
        // that no later insertion can split an earlier pair.
        let adjacent: Vec<u32> = ops
            .iter()
            .filter_map(|op| match *op {
                PlantOp::Phrase {
                    idx,
                    adjacent: true,
                } => Some(idx),
                _ => None,
            })
            .collect();
        if adjacent.is_empty() {
            return;
        }
        let mut gaps: Vec<usize> = Vec::with_capacity(adjacent.len());
        for _ in &adjacent {
            let mut gap = rng.index(tokens.len() + 1);
            let mut tries = 0;
            while gaps.contains(&gap) && tries < 32 {
                gap = rng.index(tokens.len() + 1);
                tries += 1;
            }
            if gaps.contains(&gap) {
                // Pathological density: fall back to appending at the end,
                // beyond every sampled gap.
                gap = tokens.len() + 1 + gaps.len();
            }
            gaps.push(gap);
        }
        let mut pairs: Vec<(usize, u32)> = gaps.into_iter().zip(adjacent).collect();
        pairs.sort_by_key(|p| std::cmp::Reverse(p.0)); // descending gap
        for (gap, idx) in pairs {
            let phrase = &self.plants.phrases[idx as usize];
            let gap = gap.min(tokens.len());
            tokens.insert(gap, &phrase.second);
            tokens.insert(gap, &phrase.first);
        }
    }
}

fn is_token(term: &str) -> bool {
    !term.is_empty()
        && term
            .chars()
            .all(|c| c.is_alphanumeric() && !c.is_uppercase())
}

fn in_vocab_namespace(term: &str) -> bool {
    term.len() > 1 && term.starts_with('w') && term[1..].chars().all(|c| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PlantSpec;

    #[test]
    fn deterministic_output() {
        let spec = CorpusSpec::tiny();
        let plants = PlantSpec::default().with_term("alpha", 5);
        let g1 = Generator::new(spec.clone(), plants.clone()).unwrap();
        let g2 = Generator::new(spec, plants).unwrap();
        for i in 0..g1.document_count() {
            assert_eq!(g1.document(i), g2.document(i));
        }
    }

    #[test]
    fn documents_parse() {
        let generator = Generator::new(CorpusSpec::tiny(), PlantSpec::default()).unwrap();
        for i in 0..generator.document_count() {
            let (_, xml) = generator.document(i);
            tix_xml::Document::parse(&xml).unwrap();
        }
    }

    #[test]
    fn vocab_collision_rejected() {
        let err = Generator::new(CorpusSpec::tiny(), PlantSpec::default().with_term("w12", 1));
        assert!(matches!(err, Err(PlantError::CollidesWithVocab(_))));
    }

    #[test]
    fn non_token_rejected() {
        for bad in ["two words", "", "UPPER", "hy-phen"] {
            let err = Generator::new(CorpusSpec::tiny(), PlantSpec::default().with_term(bad, 1));
            assert!(matches!(err, Err(PlantError::NotAToken(_))), "{bad:?}");
        }
    }

    #[test]
    fn density_limit() {
        let spec = CorpusSpec::tiny();
        let too_many = spec.paragraph_count() * 9;
        let err = Generator::new(spec, PlantSpec::default().with_term("alpha", too_many));
        assert!(matches!(err, Err(PlantError::TooDense { .. })));
    }

    #[test]
    fn streaming_iterator_matches_indexed_access() {
        let generator = Generator::new(CorpusSpec::tiny(), PlantSpec::default()).unwrap();
        let streamed: Vec<_> = generator.documents().collect();
        assert_eq!(streamed.len(), generator.document_count());
        for (i, pair) in streamed.iter().enumerate() {
            assert_eq!(*pair, generator.document(i));
        }
    }

    #[test]
    fn load_into_store() {
        let generator = Generator::new(CorpusSpec::tiny(), PlantSpec::default()).unwrap();
        let mut store = Store::new();
        let ids = generator.load_into(&mut store).unwrap();
        assert_eq!(ids.len(), 4);
        assert!(store.node_count() > 50);
        assert!(!store.elements_with_tag("article").is_empty());
        assert!(!store.elements_with_tag("p").is_empty());
    }
}
