//! The paper's experiment parameter grids (Tables 1–5 and the Pick
//! experiment), expressed as plant specifications so that the benchmark
//! harness and the `reproduce` binary agree on term names and frequencies.
//!
//! Naming scheme for planted terms (all lowercase alphanumeric, outside the
//! background `w{digits}` namespace):
//!
//! * `qt{freq}a` / `qt{freq}b` — the two-term pairs of Tables 1 and 2;
//! * `t3fix` (frequency 1 000) and `t3v{freq}` — Table 3;
//! * `t4x{i}` (i = 0..7, each ≈1 500) — Table 4;
//! * `ph{i}a` / `ph{i}b` — the 13 phrases of Table 5.

use crate::spec::PlantSpec;

/// Approximate term frequencies of Tables 1 and 2 (both use the same grid).
pub const TABLE12_FREQUENCIES: &[usize] =
    &[20, 100, 200, 300, 500, 1000, 2000, 3000, 5500, 7000, 10_000];

/// Frequency of term 1 in Table 3 (fixed).
pub const TABLE3_TERM1_FREQUENCY: usize = 1000;

/// Frequencies of term 2 in Table 3.
pub const TABLE3_TERM2_FREQUENCIES: &[usize] = &[20, 200, 1000, 3000, 7000];

/// Query sizes (number of terms) in Table 4.
pub const TABLE4_TERM_COUNTS: &[usize] = &[2, 3, 4, 5, 6, 7];

/// Per-term frequency in Table 4 ("around 1,500").
pub const TABLE4_FREQUENCY: usize = 1500;

/// One Table 5 row: term frequencies and the phrase-result size the paper
/// measured. Our generator plants `result` adjacent occurrences and
/// `cooccurring` extra same-node co-occurrences (the work Comp3's filter
/// step pays for), with standalone occurrences making up the totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table5Row {
    /// Total collection frequency of the first term.
    pub term1_frequency: usize,
    /// Total collection frequency of the second term.
    pub term2_frequency: usize,
    /// Number of text nodes containing the exact phrase.
    pub result_size: usize,
}

/// The 13 phrases of Table 5, scaled by 1/20 from the paper's INEX
/// frequencies (121,076 → 6,054, …) to match the default corpus size. The
/// *ratios* between term frequency, intersection size, and phrase-result
/// size — which drive the Comp3 vs PhraseFinder gap — are preserved.
pub const TABLE5_ROWS: &[Table5Row] = &[
    Table5Row {
        term1_frequency: 6054,
        term2_frequency: 2247,
        result_size: 1400,
    },
    Table5Row {
        term1_frequency: 6054,
        term2_frequency: 3984,
        result_size: 23,
    },
    Table5Row {
        term1_frequency: 5363,
        term2_frequency: 7324,
        result_size: 61,
    },
    Table5Row {
        term1_frequency: 5363,
        term2_frequency: 3984,
        result_size: 61,
    },
    Table5Row {
        term1_frequency: 4920,
        term2_frequency: 7324,
        result_size: 44,
    },
    Table5Row {
        term1_frequency: 6054,
        term2_frequency: 7324,
        result_size: 59,
    },
    Table5Row {
        term1_frequency: 4524,
        term2_frequency: 3440,
        result_size: 6,
    },
    Table5Row {
        term1_frequency: 6054,
        term2_frequency: 2299,
        result_size: 2,
    },
    Table5Row {
        term1_frequency: 6054,
        term2_frequency: 5363,
        result_size: 16,
    },
    Table5Row {
        term1_frequency: 4920,
        term2_frequency: 1402,
        result_size: 23,
    },
    Table5Row {
        term1_frequency: 7324,
        term2_frequency: 3440,
        result_size: 69,
    },
    Table5Row {
        term1_frequency: 6054,
        term2_frequency: 3440,
        result_size: 12,
    },
    Table5Row {
        term1_frequency: 4920,
        term2_frequency: 5363,
        result_size: 1,
    },
];

/// Extra same-node co-occurrences planted per Table 5 phrase, so the
/// intersection Comp3 must post-filter is meaningfully larger than the
/// phrase result (the effect the paper attributes Comp3's cost to).
pub const TABLE5_COOCCURRENCE: usize = 400;

/// Term name for a Table 1/2 pair member (`which` is 0 or 1).
pub fn pair_term(freq: usize, which: usize) -> String {
    let suffix = if which == 0 { 'a' } else { 'b' };
    format!("qt{freq}{suffix}")
}

/// Term name for Table 3's varying second term.
pub fn table3_term2(freq: usize) -> String {
    format!("t3v{freq}")
}

/// Table 3's fixed first term.
pub const TABLE3_TERM1: &str = "t3fix";

/// Term name for the `i`-th Table 4 term.
pub fn table4_term(i: usize) -> String {
    format!("t4x{i}")
}

/// Phrase term names for Table 5 row `i`.
pub fn table5_terms(i: usize) -> (String, String) {
    (format!("ph{i}a"), format!("ph{i}b"))
}

/// Build the complete plant specification for every table, scaled by
/// `scale` (1.0 = the frequencies above).
///
/// Frequencies below 1 after scaling are clamped to 1.
pub fn paper_plants(scale: f64) -> PlantSpec {
    let s = |n: usize| ((n as f64 * scale).round() as usize).max(1);
    let mut plants = PlantSpec::default();
    // Tables 1 & 2: a pair of terms per frequency step.
    for &freq in TABLE12_FREQUENCIES {
        plants = plants
            .with_term(&pair_term(freq, 0), s(freq))
            .with_term(&pair_term(freq, 1), s(freq));
    }
    // Table 3: fixed term1 plus a term per term2 frequency.
    plants = plants.with_term(TABLE3_TERM1, s(TABLE3_TERM1_FREQUENCY));
    for &freq in TABLE3_TERM2_FREQUENCIES {
        plants = plants.with_term(&table3_term2(freq), s(freq));
    }
    // Table 4: seven terms at ~1,500 each.
    for i in 0..*TABLE4_TERM_COUNTS.last().expect("non-empty") {
        plants = plants.with_term(&table4_term(i), s(TABLE4_FREQUENCY));
    }
    // Table 5: phrases. Standalone occurrences top the totals up past the
    // planted adjacent/co-occurring ones.
    for (i, row) in TABLE5_ROWS.iter().enumerate() {
        let (a, b) = table5_terms(i);
        let adjacent = s(row.result_size);
        let cooccurring = s(TABLE5_COOCCURRENCE);
        let planted_each = adjacent + cooccurring;
        plants = plants.with_phrase(&a, &b, adjacent, cooccurring);
        let t1 = s(row.term1_frequency).saturating_sub(planted_each);
        let t2 = s(row.term2_frequency).saturating_sub(planted_each);
        if t1 > 0 {
            plants = plants.with_term(&a, t1);
        }
        if t2 > 0 {
            plants = plants.with_term(&b, t2);
        }
    }
    plants
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plant_names_are_valid_tokens() {
        let plants = paper_plants(1.0);
        for term in &plants.terms {
            assert!(term.term.chars().all(|c| c.is_ascii_alphanumeric()));
            assert!(
                !term.term.starts_with('w') || !term.term[1..].chars().all(|c| c.is_ascii_digit())
            );
        }
    }

    #[test]
    fn full_scale_totals() {
        let plants = paper_plants(1.0);
        // Tables 1/2 alone plant 2 × Σ freqs = 59,240 occurrences.
        let expected_t12: usize = TABLE12_FREQUENCIES.iter().sum::<usize>() * 2;
        assert!(plants.total_insertions() > expected_t12);
        // Everything fits the default corpus comfortably.
        let spec = crate::CorpusSpec::default();
        assert!(plants.total_insertions() < spec.paragraph_count() * 8);
    }

    #[test]
    fn scaling_clamps_to_one() {
        let plants = paper_plants(0.000001);
        assert!(plants.terms.iter().all(|t| t.count >= 1));
    }

    #[test]
    fn table5_phrase_totals_match_frequencies() {
        // For each row, adjacent + cooccurring + standalone == row totals.
        let plants = paper_plants(1.0);
        for (i, row) in TABLE5_ROWS.iter().enumerate() {
            let (a, _) = table5_terms(i);
            let phrase = plants
                .phrases
                .iter()
                .find(|p| p.first == a)
                .expect("phrase planted");
            let standalone: usize = plants
                .terms
                .iter()
                .filter(|t| t.term == a)
                .map(|t| t.count)
                .sum();
            assert_eq!(
                phrase.adjacent + phrase.cooccurring + standalone,
                row.term1_frequency,
                "row {i}"
            );
        }
    }
}
