//! The paper's Figure 1 example database, verbatim.
//!
//! `articles.xml` holds the "Internet Technologies" article whose third
//! chapter is about search and retrieval; `reviews.xml` holds two reviews.
//! Every golden figure test (Figs. 5–8) and the quickstart example run
//! against these documents. Node identifiers in the comments (`#a1` …)
//! follow the paper's labels.

use tix_store::{DocId, LoadError, Store};

/// The paper's `articles.xml` (Figure 1, left).
///
/// Element text is chosen so the paper's term counts hold exactly under
/// `ScoreFoo({"search engine"}, {"internet", "information retrieval"})`:
/// e.g. paragraph `#a18` contains "search engines" once (score 0.8) and
/// `#a19` contains "search engine" and "information retrieval" once each
/// (score 0.8 + 0.6 = 1.4).
pub const ARTICLES_XML: &str = r#"<article>
<article-title>Internet Technologies</article-title>
<author id="first">
<fname>Jane</fname>
<sname>Doe</sname>
</author>
<chapter>
<ct>Caching and Replication</ct>
<p>caching proxies replicate content across the network for faster delivery</p>
</chapter>
<chapter>
<ct>Streaming Video</ct>
<p>streaming protocols deliver video frames with low latency</p>
</chapter>
<chapter>
<ct>Search and Retrieval</ct>
<section>
<section-title>Search Engine Basics</section-title>
<p>crawlers index pages and answer keyword queries at scale</p>
</section>
<section>
<section-title>Information Retrieval Techniques</section-title>
<p>ranking models order results by estimated usefulness</p>
</section>
<section>
<section-title>Examples</section-title>
<p>Here are some IR based search engines: AskAway FindFast LookSmart</p>
<p>search engine NewsInEssence uses a new information retrieval technology to cluster news</p>
<p>semantic information retrieval techniques are also being incorporated into some search engines today</p>
</section>
</chapter>
</article>"#;

/// The paper's `reviews.xml` (Figure 1, right).
pub const REVIEWS_XML: &str = r#"<reviews>
<review id="1">
<title>Internet Technologies</title>
<reviewer>
<fname>John</fname>
<sname>Doe</sname>
</reviewer>
<comments>a thorough survey of the modern internet stack</comments>
<rating>5</rating>
</review>
<review id="2">
<title>WWW Technologies</title>
<reviewer>Anonymous</reviewer>
<comments>covers the classic web protocols in depth</comments>
<rating>3</rating>
</review>
</reviews>"#;

/// Load both Figure 1 documents into a fresh store.
///
/// Returns `(store, articles_doc, reviews_doc)`.
pub fn load() -> Result<(Store, DocId, DocId), LoadError> {
    let mut store = Store::new();
    let articles = store.load_str("articles.xml", ARTICLES_XML)?;
    let reviews = store.load_str("reviews.xml", REVIEWS_XML)?;
    Ok((store, articles, reviews))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_cleanly() {
        let (store, articles, reviews) = load().unwrap();
        assert_eq!(store.doc_count(), 2);
        assert_eq!(store.doc(articles).name(), "articles.xml");
        assert_eq!(store.doc(reviews).name(), "reviews.xml");
    }

    #[test]
    fn structure_matches_figure1() {
        let (store, _, _) = load().unwrap();
        assert_eq!(store.elements_with_tag("article").len(), 1);
        assert_eq!(store.elements_with_tag("chapter").len(), 3);
        assert_eq!(store.elements_with_tag("section").len(), 3);
        assert_eq!(store.elements_with_tag("review").len(), 2);
        // The third chapter's "Examples" section has three paragraphs; the
        // first two chapters have one each.
        assert_eq!(store.elements_with_tag("p").len(), 7);
    }

    #[test]
    fn author_is_doe() {
        let (store, _, _) = load().unwrap();
        let sname = store.elements_with_tag("sname")[0];
        assert_eq!(store.text_content(sname), "Doe");
    }
}
