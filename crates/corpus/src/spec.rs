//! Corpus shape and planting specifications.

/// Shape of the synthetic IEEE-style article collection.
///
/// The paper evaluates against INEX: "technical articles from IEEE
/// Transactions marked up in XML: 18 million XML elements with a total size
/// of 500 MB". The defaults here produce the same *structure* (article →
/// front-matter + body → sections → subsections → paragraphs) at roughly
/// 1/20 that node count so the full experiment suite runs on a laptop; pass
/// a larger spec to approach paper scale.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusSpec {
    /// Number of articles (one XML document each).
    pub articles: usize,
    /// `<sec>` elements per article body.
    pub sections_per_article: usize,
    /// `<ss1>` elements per section.
    pub subsections_per_section: usize,
    /// `<p>` elements per subsection.
    pub paragraphs_per_subsection: usize,
    /// Mean background words per paragraph (actual counts jitter ±50%).
    pub words_per_paragraph: usize,
    /// Background vocabulary size (terms `w0` … `w{n-1}`).
    pub vocab_size: usize,
    /// Zipf exponent for the background vocabulary.
    pub zipf_exponent: f64,
    /// Master seed; equal specs and seeds generate identical corpora.
    pub seed: u64,
}

impl Default for CorpusSpec {
    /// The benchmark-scale corpus: ~900 k stored nodes, ~5 M tokens.
    fn default() -> Self {
        CorpusSpec {
            articles: 3000,
            sections_per_article: 5,
            subsections_per_section: 4,
            paragraphs_per_subsection: 5,
            words_per_paragraph: 18,
            vocab_size: 20_000,
            zipf_exponent: 1.07,
            seed: 0xF1E2_D3C4_B5A6_9788,
        }
    }
}

impl CorpusSpec {
    /// A corpus small enough for unit tests (hundreds of nodes).
    pub fn tiny() -> Self {
        CorpusSpec {
            articles: 4,
            sections_per_article: 2,
            subsections_per_section: 2,
            paragraphs_per_subsection: 3,
            words_per_paragraph: 8,
            vocab_size: 200,
            zipf_exponent: 1.07,
            seed: 7,
        }
    }

    /// A mid-size corpus for fast benches and integration tests
    /// (~60 k stored nodes).
    pub fn small() -> Self {
        CorpusSpec {
            articles: 200,
            sections_per_article: 4,
            subsections_per_section: 3,
            paragraphs_per_subsection: 4,
            words_per_paragraph: 15,
            vocab_size: 5_000,
            zipf_exponent: 1.07,
            seed: 11,
        }
    }

    /// Scale this spec's article count so the generated XML totals
    /// roughly `bytes` on disk (the per-article shape — sections,
    /// paragraphs, vocabulary — is kept; only `articles` changes).
    /// Combined with [`crate::Generator::documents`]' streaming
    /// generation, corpora far larger than memory can be produced.
    pub fn with_target_bytes(mut self, bytes: u64) -> Self {
        let per_article = (self.approx_bytes() / self.articles.max(1) as u64).max(1);
        self.articles = usize::try_from((bytes / per_article).max(1)).unwrap_or(usize::MAX);
        self
    }

    /// The paper's evaluation corpus shape: INEX, "technical articles
    /// from IEEE Transactions marked up in XML: 18 million XML elements
    /// with a total size of 500 MB". Generating (let alone loading) this
    /// takes a while — benches default to a scaled-down fraction and
    /// accept an override (see `tix-bench`).
    pub fn inex() -> Self {
        CorpusSpec::default().with_target_bytes(500 * 1024 * 1024)
    }

    /// Rough serialized-XML size estimate in bytes, for sizing corpora by
    /// target footprint. Background words average ~6 bytes plus a
    /// separator; element overhead is counted per node.
    pub fn approx_bytes(&self) -> u64 {
        let word = 7u64;
        let per_paragraph = self.words_per_paragraph as u64 * word + 9; // <p></p>
        let per_subsection = 12 + self.paragraphs_per_subsection as u64 * per_paragraph;
        let per_section = 30 + 4 * word + self.subsections_per_section as u64 * per_subsection;
        // Front matter: article/fm/bdy tags, title, authors.
        let per_article = 150 + 6 * word + self.sections_per_article as u64 * per_section;
        self.articles as u64 * per_article
    }

    /// Total number of `<p>` paragraphs the corpus will contain.
    pub fn paragraph_count(&self) -> usize {
        self.articles
            * self.sections_per_article
            * self.subsections_per_section
            * self.paragraphs_per_subsection
    }

    /// Rough stored-node estimate (elements + text nodes), for sizing
    /// reports.
    pub fn approx_nodes(&self) -> usize {
        // Per paragraph: <p> + text. Per subsection: <ss1> + <st> + title
        // text. Per section: <sec> + <st> + title text. Per article:
        // <article> + <fm> + <atl> + title text + 2 authors × 4 nodes +
        // <bdy>.
        let per_article = 1 + 1 + 1 + 1 + 2 * 4 + 1;
        let per_section = 3;
        let per_subsection = 3;
        let per_paragraph = 2;
        self.articles
            * (per_article
                + self.sections_per_article
                    * (per_section
                        + self.subsections_per_section
                            * (per_subsection + self.paragraphs_per_subsection * per_paragraph)))
    }
}

/// One planted term: `term` will occur exactly `count` times across the
/// corpus, uniformly spread over paragraphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedTerm {
    /// The term (must be lowercase alphanumeric; must not collide with the
    /// background vocabulary's `w{digits}` namespace).
    pub term: String,
    /// Exact number of occurrences to plant.
    pub count: usize,
}

/// A planted two-term phrase for the PhraseFinder experiments (Table 5).
///
/// * `adjacent` paragraphs receive the exact phrase `first second`;
/// * `cooccurring` paragraphs receive both terms separated by at least one
///   background word (they satisfy a term-intersection but not the phrase).
///
/// Each adjacent/cooccurring planting contributes one occurrence of each
/// term; add standalone [`PlantedTerm`] entries to reach a target total
/// frequency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedPhrase {
    /// First phrase term.
    pub first: String,
    /// Second phrase term.
    pub second: String,
    /// Number of paragraphs with the terms adjacent, in order.
    pub adjacent: usize,
    /// Number of paragraphs with both terms present but not adjacent.
    pub cooccurring: usize,
}

/// Everything to plant into a corpus.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlantSpec {
    /// Standalone term plantings.
    pub terms: Vec<PlantedTerm>,
    /// Phrase plantings.
    pub phrases: Vec<PlantedPhrase>,
}

impl PlantSpec {
    /// Add a standalone planted term (builder style).
    pub fn with_term(mut self, term: &str, count: usize) -> Self {
        self.terms.push(PlantedTerm {
            term: term.to_string(),
            count,
        });
        self
    }

    /// Add a planted phrase (builder style).
    pub fn with_phrase(
        mut self,
        first: &str,
        second: &str,
        adjacent: usize,
        cooccurring: usize,
    ) -> Self {
        self.phrases.push(PlantedPhrase {
            first: first.to_string(),
            second: second.to_string(),
            adjacent,
            cooccurring,
        });
        self
    }

    /// Total individual plant operations (for sanity checks against
    /// paragraph capacity).
    pub fn total_insertions(&self) -> usize {
        self.terms.iter().map(|t| t.count).sum::<usize>()
            + self
                .phrases
                .iter()
                .map(|p| p.adjacent + p.cooccurring)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paragraph_count() {
        let spec = CorpusSpec::tiny();
        assert_eq!(spec.paragraph_count(), 4 * 2 * 2 * 3);
    }

    #[test]
    fn default_is_bench_scale() {
        let spec = CorpusSpec::default();
        assert!(spec.approx_nodes() > 500_000);
        assert!(spec.approx_nodes() < 3_000_000);
    }

    #[test]
    fn target_bytes_scales_article_count() {
        let base = CorpusSpec::default();
        let half = base.clone().with_target_bytes(base.approx_bytes() / 2);
        assert!(half.articles >= base.articles / 2 - 1 && half.articles <= base.articles / 2 + 1);
        // Only the article count changes; the per-article shape is kept.
        assert_eq!(half.sections_per_article, base.sections_per_article);
        assert_eq!(half.vocab_size, base.vocab_size);
        // A tiny target still yields a generatable corpus.
        assert!(CorpusSpec::default().with_target_bytes(1).articles >= 1);
    }

    #[test]
    fn inex_preset_is_paper_scale() {
        let inex = CorpusSpec::inex();
        let bytes = inex.approx_bytes();
        assert!(
            (400 * 1024 * 1024..650 * 1024 * 1024).contains(&bytes),
            "estimated {bytes} bytes"
        );
        // The paper quotes 18 M elements for 500 MB; the synthetic shape
        // lands within a factor of ~4 of that density.
        assert!(inex.approx_nodes() > 4_000_000, "{}", inex.approx_nodes());
    }

    #[test]
    fn plant_builder() {
        let plants = PlantSpec::default()
            .with_term("alpha", 10)
            .with_phrase("beta", "gamma", 3, 4);
        assert_eq!(plants.total_insertions(), 17);
    }
}
