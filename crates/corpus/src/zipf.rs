//! Zipf-distributed sampling for the background vocabulary.
//!
//! Real IR collections have heavily skewed term frequencies; posting-list
//! length distributions matter to every algorithm under test, so the
//! background text follows a Zipf law rather than a uniform draw.

use crate::rng::Rng;

/// Samples ranks `0..n` with probability proportional to `1 / (rank+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative distribution, `cdf[i]` = P(rank ≤ i).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s` (classic text uses
    /// s ≈ 1.0–1.2).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(s.is_finite(), "exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for value in &mut cdf {
            *value /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (the constructor rejects `n == 0`).
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_in_range() {
        let zipf = Zipf::new(100, 1.1);
        let mut rng = Rng::new(1);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_most_frequent() {
        let zipf = Zipf::new(50, 1.1);
        let mut rng = Rng::new(2);
        let mut counts = [0usize; 50];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[40]);
    }

    #[test]
    fn skew_roughly_zipfian() {
        let zipf = Zipf::new(1000, 1.0);
        let mut rng = Rng::new(3);
        let mut counts = vec![0usize; 1000];
        for _ in 0..200_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // rank 0 should occur roughly 2x rank 1 and 10x rank 9.
        let r0 = counts[0] as f64;
        assert!((r0 / counts[1] as f64) > 1.5 && (r0 / counts[1] as f64) < 2.7);
        assert!((r0 / counts[9] as f64) > 6.0 && (r0 / counts[9] as f64) < 16.0);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }
}
