//! # tix-corpus
//!
//! Deterministic synthetic corpus and workload generator for the TIX
//! experiments.
//!
//! The paper evaluates on the INEX collection (IEEE Transactions articles,
//! 18 M elements, 500 MB), which is licensed and unavailable. Per the
//! reproduction's substitution rule (see `DESIGN.md` §4) this crate
//! generates a structurally equivalent collection:
//!
//! * IEEE-article shape: `article → fm(atl, au…) + bdy(sec → ss1 → p)`;
//! * Zipf-distributed background vocabulary, so posting-list lengths are
//!   realistically skewed;
//! * **exact planted term frequencies** — each Tables 1–4 row's "approx.
//!   term freq." is reproduced by planting dedicated terms with that exact
//!   collection frequency;
//! * **planted phrases** with controlled adjacency and co-occurrence
//!   counts, reproducing Table 5's term-frequency / result-size profile.
//!
//! Everything is deterministic from the spec's seed — no external RNG
//! dependency, identical bytes on every machine.
//!
//! ```
//! use tix_corpus::{CorpusSpec, Generator, PlantSpec};
//! use tix_store::Store;
//!
//! let spec = CorpusSpec::tiny();
//! let plants = PlantSpec::default().with_term("needle", 12);
//! let generator = Generator::new(spec, plants).unwrap();
//! let mut store = Store::new();
//! generator.load_into(&mut store).unwrap();
//!
//! // The planted frequency is exact:
//! let index = tix_index::InvertedIndex::build(&store);
//! assert_eq!(index.collection_frequency("needle"), 12);
//! ```

pub mod fig1;
mod generate;
mod rng;
mod spec;
pub mod workloads;
mod zipf;

pub use generate::{Generator, PlantError};
pub use rng::Rng;
pub use spec::{CorpusSpec, PlantSpec, PlantedPhrase, PlantedTerm};
pub use zipf::Zipf;
