//! A lightweight Rust lexer, sufficient for line-accurate lint rules.
//!
//! This is deliberately not a full parser: the rules in this crate only
//! need a token stream that correctly skips comments, strings (including
//! raw strings), and character literals, distinguishes lifetimes from char
//! literals, and knows which lines carry comments. Anything structural
//! (attribute spans, `#[cfg(test)]` modules) is recovered by small
//! post-passes over the token stream in `rules.rs`.

/// What a token is, as far as the lint rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `pub`, `as`, names, ...).
    Ident,
    /// Numeric literal; `is_float` is recorded in [`Token::is_float`].
    Number,
    /// String or byte-string literal (raw or not).
    Str,
    /// Character literal.
    Char,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
    /// Outer doc comment (`///` or `/** ... */`).
    DocComment,
    /// Punctuation; multi-char operators `==`, `!=`, `::`, `->`, `=>`,
    /// `..` are kept as single tokens.
    Punct,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
    pub is_float: bool,
}

/// A non-doc comment and the line it starts on, kept out of the token
/// stream but available for rules that read comments (`// SAFETY:`,
/// `// lint:allow(...)`).
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and comments. Invalid input never panics; the
/// lexer skips what it cannot classify.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    let push = |out: &mut Lexed, kind: TokenKind, text: String, line: u32, is_float: bool| {
        out.tokens.push(Token {
            kind,
            text,
            line,
            is_float,
        });
    };

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start_line = line;
            let mut j = i + 2;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            let text: String = chars[i..j].iter().collect();
            // `///` and `/**`-style outer docs become tokens so the
            // pub-doc rule can see them adjacent to items; `//!` inner
            // docs and plain comments go to the comment list.
            if text.starts_with("///") && !text.starts_with("////") {
                push(&mut out, TokenKind::DocComment, text, start_line, false);
            } else {
                out.comments.push(Comment {
                    line: start_line,
                    text,
                });
            }
            i = j;
            continue;
        }
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start_line = line;
            let mut depth = 1u32;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let text: String = chars[i..j].iter().collect();
            if text.starts_with("/**") && !text.starts_with("/***") {
                push(&mut out, TokenKind::DocComment, text, start_line, false);
            } else {
                out.comments.push(Comment {
                    line: start_line,
                    text,
                });
            }
            i = j;
            continue;
        }
        // Raw / byte strings: r"..", r#".."#, b"..", br#".."#.
        if (c == 'r' || c == 'b') && i + 1 < n {
            if let Some(j) = raw_or_byte_string_end(&chars, i) {
                let start_line = line;
                line += chars[i..j].iter().filter(|&&ch| ch == '\n').count() as u32;
                push(&mut out, TokenKind::Str, String::new(), start_line, false);
                i = j;
                continue;
            }
        }
        // Plain strings.
        if c == '"' {
            let start_line = line;
            let mut j = i + 1;
            while j < n {
                match chars[j] {
                    '\\' => j += 2,
                    '"' => {
                        j += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            push(&mut out, TokenKind::Str, String::new(), start_line, false);
            i = j;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if i + 1 < n && chars[i + 1] == '\\' {
                // Escaped char literal: '\n', '\'', '\u{..}'.
                let mut j = i + 2;
                while j < n && chars[j] != '\'' {
                    j += 1;
                }
                push(&mut out, TokenKind::Char, String::new(), line, false);
                i = (j + 1).min(n);
                continue;
            }
            if i + 2 < n && chars[i + 2] == '\'' {
                push(&mut out, TokenKind::Char, String::new(), line, false);
                i += 3;
                continue;
            }
            // Lifetime or loop label.
            let mut j = i + 1;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            push(
                &mut out,
                TokenKind::Lifetime,
                chars[i..j].iter().collect(),
                line,
                false,
            );
            i = j.max(i + 1);
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            let mut is_float = false;
            while j < n {
                let d = chars[j];
                if d.is_ascii_alphanumeric() || d == '_' {
                    if (d == 'e' || d == 'E')
                        && j + 1 < n
                        && (chars[j + 1] == '+' || chars[j + 1] == '-')
                        && is_float
                    {
                        j += 2;
                        continue;
                    }
                    j += 1;
                } else if d == '.' {
                    // `1..x` is a range, `1.0` is a float, `1.foo()` is rare
                    // but real (`1.to_string()`): only consume the dot when
                    // a digit follows.
                    if j + 1 < n && chars[j + 1].is_ascii_digit() {
                        is_float = true;
                        j += 2;
                    } else {
                        break;
                    }
                } else {
                    break;
                }
            }
            push(
                &mut out,
                TokenKind::Number,
                chars[i..j].iter().collect(),
                line,
                is_float,
            );
            i = j;
            continue;
        }
        // Identifiers and keywords.
        if c.is_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            push(
                &mut out,
                TokenKind::Ident,
                chars[i..j].iter().collect(),
                line,
                false,
            );
            i = j;
            continue;
        }
        // Multi-char operators the rules care about.
        let two: Option<&str> = if i + 1 < n {
            match (c, chars[i + 1]) {
                ('=', '=') => Some("=="),
                ('!', '=') => Some("!="),
                (':', ':') => Some("::"),
                ('-', '>') => Some("->"),
                ('=', '>') => Some("=>"),
                ('.', '.') => Some(".."),
                _ => None,
            }
        } else {
            None
        };
        if let Some(op) = two {
            push(&mut out, TokenKind::Punct, op.to_string(), line, false);
            i += 2;
            continue;
        }
        push(&mut out, TokenKind::Punct, c.to_string(), line, false);
        i += 1;
    }
    out
}

/// If position `i` starts a raw or byte string literal, return the index
/// one past its closing quote; otherwise `None`.
fn raw_or_byte_string_end(chars: &[char], i: usize) -> Option<usize> {
    let n = chars.len();
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if j < n && chars[j] == 'r' {
            j += 1;
        }
    } else if chars[j] == 'r' {
        j += 1;
    } else {
        return None;
    }
    let mut hashes = 0usize;
    while j < n && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || chars[j] != '"' {
        return None;
    }
    // A plain `b"..."` (hashes == 0, no `r`) is a byte string; it still
    // supports escapes, while raw strings do not.
    let raw = chars[i] == 'r' || (chars[i] == 'b' && i + 1 < n && chars[i + 1] == 'r');
    j += 1;
    while j < n {
        if !raw && chars[j] == '\\' {
            j += 2;
            continue;
        }
        if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && chars[k] == '#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some(k);
            }
        }
        j += 1;
    }
    Some(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let l = lex("// hello\nfn main() {} /* block */");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(idents("// x.unwrap()\nlet y = 1;"), ["let", "y"]);
    }

    #[test]
    fn doc_comments_are_tokens() {
        let l = lex("/// docs\npub fn f() {}");
        assert_eq!(l.tokens[0].kind, TokenKind::DocComment);
    }

    #[test]
    fn strings_hide_contents() {
        let l = lex(r#"let s = "a.unwrap()";"#);
        assert!(l.tokens.iter().all(|t| t.text != "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r##"let s = r#"quote " inside"#; let t = 1;"##);
        assert!(idents(r##"let s = r#"x.unwrap()"#; let t = 1;"##).contains(&"t".to_string()));
        assert!(l.tokens.iter().any(|t| t.text == "t"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'b' }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            1
        );
    }

    #[test]
    fn float_detection() {
        let l = lex("let a = 1.5; let b = 0..10; let c = 3;");
        let nums: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .collect();
        assert!(nums[0].is_float);
        assert!(!nums[1].is_float); // 0 in 0..10
        assert!(!nums[2].is_float); // 10
        assert!(!nums[3].is_float); // 3
    }

    #[test]
    fn multichar_ops() {
        let l = lex("a == b != c::d");
        let ops: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(ops, ["==", "!=", "::"]);
    }

    #[test]
    fn lines_tracked() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }
}
