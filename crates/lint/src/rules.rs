//! The lint rules, evaluated over the token stream of one file.

use std::collections::HashMap;

use crate::config;
use crate::lexer::{Lexed, Token, TokenKind};

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
    pub help: &'static str,
}

/// Per-file context shared by all rules.
pub struct FileCtx<'a> {
    pub rel: &'a str,
    pub krate: &'a str,
    pub lx: &'a Lexed,
    /// Per-token flag: inside a `#[cfg(test)]` / `#[test]` span.
    in_test: Vec<bool>,
    /// Inline allows: line -> rule names allowed on that line and the next.
    allows: HashMap<u32, Vec<String>>,
    /// The file defines `fn expect` (the xml reader's cursor helper) —
    /// `self.expect(..)` there is not `Option::expect`.
    defines_fn_expect: bool,
}

impl<'a> FileCtx<'a> {
    pub fn new(rel: &'a str, lx: &'a Lexed) -> Self {
        let krate = config::crate_of(rel).unwrap_or("");
        let in_test = mark_test_spans(&lx.tokens);
        let allows = parse_allows(lx);
        let defines_fn_expect = lx
            .tokens
            .windows(2)
            .any(|w| w[0].text == "fn" && w[1].text == "expect");
        FileCtx {
            rel,
            krate,
            lx,
            in_test,
            allows,
            defines_fn_expect,
        }
    }

    fn is_test(&self, tok_idx: usize) -> bool {
        self.in_test.get(tok_idx).copied().unwrap_or(false)
    }

    /// Suppressed by an inline `// lint:allow(rule)` on this line or the
    /// line above?
    fn inline_allowed(&self, rule: &str, line: u32) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.allows
                .get(l)
                .is_some_and(|rules| rules.iter().any(|r| r == rule || r == "all"))
        })
    }

    fn suppressed(&self, rule: &'static str, line: u32) -> bool {
        config::allowed(rule, self.rel).is_some() || self.inline_allowed(rule, line)
    }
}

/// Run every applicable rule on one file.
pub fn run_all(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if config::is_test_path(ctx.rel) {
        return;
    }
    no_unwrap(ctx, out);
    no_slice_index(ctx, out);
    no_as_cast(ctx, out);
    safety_comment(ctx, out);
    no_thread_spawn(ctx, out);
    no_unbounded_channel(ctx, out);
    pub_doc(ctx, out);
    no_float_eq(ctx, out);
    no_bare_file_create(ctx, out);
}

fn push(
    out: &mut Vec<Finding>,
    ctx: &FileCtx<'_>,
    rule: &'static str,
    line: u32,
    message: String,
    help: &'static str,
) {
    if ctx.suppressed(rule, line) {
        return;
    }
    out.push(Finding {
        rule,
        file: ctx.rel.to_string(),
        line,
        message,
        help,
    });
}

/// `no-unwrap`: no `.unwrap()` / `.expect(..)` in library and CLI code.
fn no_unwrap(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !config::PANIC_FREE_CRATES.contains(&ctx.krate) {
        return;
    }
    let toks = &ctx.lx.tokens;
    for i in 0..toks.len().saturating_sub(2) {
        if ctx.is_test(i) || toks[i].text != "." {
            continue;
        }
        let name = &toks[i + 1];
        if name.kind != TokenKind::Ident || (name.text != "unwrap" && name.text != "expect") {
            continue;
        }
        if toks[i + 2].text != "(" {
            continue;
        }
        // `self.expect("<")` in files that define `fn expect` is a local
        // cursor method, not `Option::expect`.
        if name.text == "expect" && ctx.defines_fn_expect && i > 0 && toks[i - 1].text == "self" {
            continue;
        }
        push(
            out,
            ctx,
            "no-unwrap",
            name.line,
            format!("`.{}()` can panic in library code", name.text),
            "return a contextual error (`ok_or`, `?`, a typed enum) or handle the None/Err arm explicitly",
        );
    }
}

/// `no-slice-index`: unchecked `container[index]` in library code.
fn no_slice_index(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !config::INDEX_CHECKED_CRATES.contains(&ctx.krate) {
        return;
    }
    const KEYWORDS: &[&str] = &[
        "let", "mut", "ref", "in", "if", "else", "return", "match", "as", "const", "static",
        "move", "dyn", "impl", "for", "while", "loop", "where", "fn", "pub", "use", "mod", "break",
        "continue", "struct", "enum", "trait", "type", "unsafe", "crate", "box",
    ];
    let toks = &ctx.lx.tokens;
    for i in 1..toks.len() {
        if ctx.is_test(i) || toks[i].text != "[" {
            continue;
        }
        let prev = &toks[i - 1];
        let indexable = match prev.kind {
            TokenKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
            TokenKind::Punct => prev.text == ")" || prev.text == "]",
            _ => false,
        };
        if !indexable {
            continue;
        }
        push(
            out,
            ctx,
            "no-slice-index",
            toks[i].line,
            "unchecked indexing can panic on out-of-range input".to_string(),
            "use `.get()`/`.first()`/`.last()`, or justify bounds with `// lint:allow(no-slice-index): <why in-bounds>`",
        );
    }
}

/// `no-as-cast`: no `as` numeric casts in scoring-path or write-path
/// files (wrong score vs. corrupted WAL offset — both silent).
fn no_as_cast(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let scoped = config::SCORING_PATHS
        .iter()
        .chain(config::WRITE_PATHS)
        .any(|p| ctx.rel.ends_with(p));
    if !scoped {
        return;
    }
    let toks = &ctx.lx.tokens;
    let mut in_use = false;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.text == "use" && t.kind == TokenKind::Ident {
            in_use = true;
        } else if t.text == ";" {
            in_use = false;
        }
        if ctx.is_test(i) || in_use || t.text != "as" || t.kind != TokenKind::Ident {
            continue;
        }
        if i == 0 || i + 1 >= toks.len() {
            continue;
        }
        let prev_ok = matches!(toks[i - 1].kind, TokenKind::Ident | TokenKind::Number)
            || toks[i - 1].text == ")"
            || toks[i - 1].text == "]";
        let next_ok = toks[i + 1].kind == TokenKind::Ident;
        if prev_ok && next_ok {
            push(
                out,
                ctx,
                "no-as-cast",
                t.line,
                "`as` cast in a scoring path silently wraps or truncates".to_string(),
                "use `f64::from`/`u32::try_from` (widening/checked), or `// lint:allow(no-as-cast): <why exact>` for intentional truncation",
            );
        }
    }
}

/// `safety-comment`: every `unsafe` block needs an adjacent `// SAFETY:`.
fn safety_comment(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.lx.tokens;
    for i in 0..toks.len() {
        if ctx.is_test(i) || toks[i].text != "unsafe" || toks[i].kind != TokenKind::Ident {
            continue;
        }
        // Only blocks: `unsafe {`. Declarations (`pub unsafe fn`) document
        // their contract in a `# Safety` doc section instead.
        if toks.get(i + 1).map(|t| t.text.as_str()) != Some("{") {
            continue;
        }
        let line = toks[i].line;
        let documented = ctx
            .lx
            .comments
            .iter()
            .any(|c| c.line + 3 > line && c.line <= line && c.text.contains("SAFETY:"));
        if !documented {
            push(
                out,
                ctx,
                "safety-comment",
                line,
                "`unsafe` block without a `// SAFETY:` justification".to_string(),
                "add `// SAFETY: <why the invariants hold>` on the line above the block",
            );
        }
    }
}

/// `no-thread-spawn`: `thread::spawn` only inside `tix-parallel`.
fn no_thread_spawn(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if config::SPAWN_EXEMPT_CRATES.contains(&ctx.krate) {
        return;
    }
    let toks = &ctx.lx.tokens;
    for i in 0..toks.len().saturating_sub(2) {
        if ctx.is_test(i) {
            continue;
        }
        if toks[i].text == "thread" && toks[i + 1].text == "::" && toks[i + 2].text == "spawn" {
            push(
                out,
                ctx,
                "no-thread-spawn",
                toks[i].line,
                "thread spawning outside tix-parallel".to_string(),
                "use `tix_parallel::parallel_map` so the document-partitioned equivalence guarantees apply",
            );
        }
    }
}

/// `no-unbounded-channel`: request-path queues in serving code must be
/// bounded. Flags `VecDeque` (the natural queue type) and `Vec`s whose
/// surrounding identifiers say "queue", unless the file also contains an
/// explicit capacity comparison — the admission check that turns a buffer
/// into a bounded queue. A queue that grows with client demand converts a
/// traffic burst into memory exhaustion; load must be shed at admission.
fn no_unbounded_channel(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !config::BOUNDED_QUEUE_CRATES.contains(&ctx.krate) {
        return;
    }
    let toks = &ctx.lx.tokens;
    // A capacity guard anywhere in the file vouches for its queues: some
    // comparison operator within a few tokens of a `capacity`-named value,
    // e.g. `items.len() >= self.capacity`.
    const GUARD_WINDOW: usize = 4;
    let has_capacity_guard = toks.iter().enumerate().any(|(i, t)| {
        if t.kind != TokenKind::Punct || !matches!(t.text.as_str(), ">=" | "<=" | ">" | "<") {
            return false;
        }
        let lo = i.saturating_sub(GUARD_WINDOW);
        let hi = (i + GUARD_WINDOW + 1).min(toks.len());
        toks[lo..hi]
            .iter()
            .any(|n| n.kind == TokenKind::Ident && n.text.to_lowercase().contains("capacity"))
    });
    if has_capacity_guard {
        return;
    }
    const QUEUE_WINDOW: usize = 6;
    let mut in_use = false;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.text == "use" && t.kind == TokenKind::Ident {
            in_use = true; // imports name the type without buffering anything
        } else if t.text == ";" {
            in_use = false;
        }
        if ctx.is_test(i) || in_use || t.kind != TokenKind::Ident {
            continue;
        }
        let queue_like = t.text == "VecDeque"
            || (t.text == "Vec" && {
                let lo = i.saturating_sub(QUEUE_WINDOW);
                toks[lo..i]
                    .iter()
                    .any(|p| p.kind == TokenKind::Ident && p.text.to_lowercase().contains("queue"))
            });
        if queue_like {
            push(
                out,
                ctx,
                "no-unbounded-channel",
                t.line,
                format!("`{}` used as a request queue with no capacity check in this file", t.text),
                "bound it: compare the length against a capacity before pushing (admission control), and shed load (503) when full",
            );
        }
    }
}

/// `pub-doc`: public items in `core`/`exec` need doc comments.
fn pub_doc(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !config::DOC_CRATES.contains(&ctx.krate) {
        return;
    }
    const ITEM_KEYWORDS: &[&str] = &[
        "fn", "struct", "enum", "trait", "const", "static", "type", "mod", "union",
    ];
    let toks = &ctx.lx.tokens;
    for i in 0..toks.len() {
        if ctx.is_test(i) || toks[i].text != "pub" || toks[i].kind != TokenKind::Ident {
            continue;
        }
        let mut j = i + 1;
        // `pub(crate)` / `pub(super)` are not part of the public API.
        if toks.get(j).map(|t| t.text.as_str()) == Some("(") {
            continue;
        }
        // Skip qualifiers: `pub async fn`, `pub unsafe fn`, `pub extern "C" fn`.
        while toks.get(j).is_some_and(|t| {
            matches!(t.text.as_str(), "async" | "unsafe" | "extern") || t.kind == TokenKind::Str
        }) {
            j += 1;
        }
        let Some(kw) = toks.get(j) else { continue };
        if kw.text == "use" {
            continue; // re-exports inherit the original item's docs
        }
        if !ITEM_KEYWORDS.contains(&kw.text.as_str()) {
            continue; // struct fields, etc.
        }
        // Out-of-line `pub mod name;` — the module documents itself with
        // `//!` inner docs in its own file.
        if kw.text == "mod" && toks.get(j + 2).map(|t| t.text.as_str()) == Some(";") {
            continue;
        }
        let name = toks.get(j + 1).map(|t| t.text.clone()).unwrap_or_default();
        if !has_doc(toks, i) {
            push(
                out,
                ctx,
                "pub-doc",
                toks[i].line,
                format!("public {} `{}` has no doc comment", kw.text, name),
                "add a `///` summary line describing the contract, not the implementation",
            );
        }
    }
}

/// Does the item starting at token `i` (its `pub`) have an outer doc
/// comment or `#[doc]` attribute, scanning back across attributes?
fn has_doc(toks: &[Token], mut i: usize) -> bool {
    loop {
        if i == 0 {
            return false;
        }
        let prev = &toks[i - 1];
        if prev.kind == TokenKind::DocComment {
            return true;
        }
        if prev.text == "]" {
            // Walk back over one attribute `#[ ... ]`.
            let mut depth = 1i32;
            let mut k = i - 1;
            while k > 0 && depth > 0 {
                k -= 1;
                match toks[k].text.as_str() {
                    "]" => depth += 1,
                    "[" => depth -= 1,
                    _ => {}
                }
            }
            if k == 0 || toks[k - 1].text != "#" {
                return false;
            }
            if toks[k..i].iter().any(|t| t.text == "doc") {
                return true;
            }
            i = k - 1;
            continue;
        }
        return false;
    }
}

/// `no-float-eq`: no `==`/`!=` against float literals or score values.
fn no_float_eq(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !config::FLOAT_EQ_CRATES.contains(&ctx.krate) {
        return;
    }
    let toks = &ctx.lx.tokens;
    for i in 1..toks.len().saturating_sub(1) {
        let t = &toks[i];
        if ctx.is_test(i) || t.kind != TokenKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let floatish = |tok: &Token| {
            (tok.kind == TokenKind::Number && tok.is_float)
                || (tok.kind == TokenKind::Ident && tok.text.to_lowercase().contains("score"))
        };
        if floatish(&toks[i - 1]) || floatish(&toks[i + 1]) {
            push(
                out,
                ctx,
                "no-float-eq",
                t.line,
                "direct float equality on a score".to_string(),
                "use `f64::total_cmp`, an epsilon comparison, or restructure around an integer quantity",
            );
        }
    }
}

/// `no-bare-file-create`: in snapshot-writing crates, `File::create`
/// writes partial bytes at the final path — a crash mid-write replaces
/// committed data with a torn file. Durable writes must go through
/// `tix_store::persist::atomic_write` (sibling temp + fsync + rename).
fn no_bare_file_create(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !config::DURABLE_WRITE_CRATES.contains(&ctx.krate) {
        return;
    }
    let toks = &ctx.lx.tokens;
    for i in 0..toks.len().saturating_sub(2) {
        if ctx.is_test(i) {
            continue;
        }
        if toks[i].text == "File"
            && toks[i].kind == TokenKind::Ident
            && toks[i + 1].text == "::"
            && toks[i + 2].text == "create"
        {
            push(
                out,
                ctx,
                "no-bare-file-create",
                toks[i].line,
                "`File::create` writes in place; a crash mid-write leaves a torn file at the final path".to_string(),
                "route the write through `tix_store::persist::atomic_write`, or justify with `// lint:allow(no-bare-file-create): <why atomic>`",
            );
        }
    }
}

/// Mark the token spans covered by `#[cfg(test)]` / `#[test]` items.
fn mark_test_spans(toks: &[Token]) -> Vec<bool> {
    let mut marked = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(after_attr) = test_attr_end(toks, i) {
            // Skip any further attributes on the same item.
            let mut j = after_attr;
            while toks.get(j).map(|t| t.text.as_str()) == Some("#") {
                if let Some(end) = attr_end(toks, j) {
                    j = end;
                } else {
                    break;
                }
            }
            // The item ends at the first `;` or matching `}` of the first
            // `{` at nesting depth 0.
            let mut k = j;
            let mut depth = 0i32;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        k += 1;
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            for flag in marked.iter_mut().take(k.min(toks.len())).skip(i) {
                *flag = true;
            }
            i = k;
            continue;
        }
        i += 1;
    }
    marked
}

/// If token `i` begins a `#[...]` attribute, return the index one past its
/// closing `]`.
fn attr_end(toks: &[Token], i: usize) -> Option<usize> {
    if toks.get(i)?.text != "#" || toks.get(i + 1)?.text != "[" {
        return None;
    }
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// If token `i` begins a test-marking attribute (`#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, ...))]` — but not `#[cfg(not(test))]`), return the
/// index one past its closing `]`.
fn test_attr_end(toks: &[Token], i: usize) -> Option<usize> {
    let end = attr_end(toks, i)?;
    let inner = &toks[i + 2..end - 1];
    let has_test = inner
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text == "test");
    let negated = inner
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text == "not");
    let is_cfg = inner
        .first()
        .is_some_and(|t| t.text == "cfg" || t.text == "test" || t.text == "cfg_attr");
    // `#[cfg_attr(...)]` never marks test code by itself.
    let cfg_attr = inner.first().is_some_and(|t| t.text == "cfg_attr");
    if has_test && !negated && is_cfg && !cfg_attr {
        Some(end)
    } else {
        None
    }
}

/// Parse `// lint:allow(rule, rule): reason` directives from comments.
fn parse_allows(lx: &Lexed) -> HashMap<u32, Vec<String>> {
    let mut map: HashMap<u32, Vec<String>> = HashMap::new();
    for c in &lx.comments {
        let Some(pos) = c.text.find("lint:allow(") else {
            continue;
        };
        let rest = &c.text[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty());
        map.entry(c.line).or_default().extend(rules);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings_in(rel: &str, src: &str) -> Vec<Finding> {
        let lx = lex(src);
        let ctx = FileCtx::new(rel, &lx);
        let mut out = Vec::new();
        run_all(&ctx, &mut out);
        out
    }

    fn rules_of(f: &[Finding]) -> Vec<&str> {
        f.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unwrap_flagged_in_lib_crates() {
        let f = findings_in("crates/core/src/x.rs", "fn f() { let x = y.unwrap(); }");
        assert_eq!(rules_of(&f), ["no-unwrap"]);
        let f = findings_in("crates/store/src/x.rs", "fn f() { y.expect(\"msg\"); }");
        assert_eq!(rules_of(&f), ["no-unwrap"]);
    }

    #[test]
    fn unwrap_or_not_flagged() {
        let f = findings_in("crates/core/src/x.rs", "fn f() { y.unwrap_or(0); }");
        assert!(f.is_empty());
    }

    #[test]
    fn unwrap_ok_outside_scope_and_in_tests() {
        assert!(findings_in("crates/bench/src/x.rs", "fn f() { y.unwrap(); }").is_empty());
        assert!(findings_in(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests { fn f() { y.unwrap(); } }"
        )
        .is_empty());
        assert!(findings_in("crates/core/tests/t.rs", "fn f() { y.unwrap(); }").is_empty());
    }

    #[test]
    fn local_fn_expect_not_flagged() {
        let src =
            "impl R { fn expect(&mut self, t: &str) {} fn go(&mut self) { self.expect(\"<\"); } }";
        assert!(findings_in("crates/xml/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_still_checked() {
        let f = findings_in(
            "crates/core/src/x.rs",
            "#[cfg(not(test))]\nfn f() { y.unwrap(); }",
        );
        assert_eq!(rules_of(&f), ["no-unwrap"]);
    }

    #[test]
    fn slice_index_flagged_and_allowed() {
        let f = findings_in("crates/exec/src/x.rs", "fn f() { let x = v[i]; }");
        assert_eq!(rules_of(&f), ["no-slice-index"]);
        let f = findings_in(
            "crates/exec/src/x.rs",
            "fn f() {\n    // lint:allow(no-slice-index): i < v.len() checked above\n    let x = v[i];\n}",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn slice_index_ignores_types_macros_attrs() {
        let src = "#[derive(Debug)]\nstruct S { a: [u8; 4] }\nfn f() { let v = vec![1]; let [a, b] = pair; }";
        assert!(findings_in("crates/exec/src/x.rs", src).is_empty());
    }

    #[test]
    fn as_cast_flagged_in_scoring_paths_only() {
        let f = findings_in(
            "crates/exec/src/topk.rs",
            "fn f(n: usize) -> f64 { n as f64 }",
        );
        assert_eq!(rules_of(&f), ["no-as-cast"]);
        assert!(findings_in(
            "crates/exec/src/stream.rs",
            "fn f(n: usize) -> f64 { n as f64 }"
        )
        .is_empty());
        // `use x as y` is not a cast.
        assert!(findings_in("crates/exec/src/topk.rs", "use a::b as c;").is_empty());
    }

    #[test]
    fn safety_comment_required() {
        let f = findings_in("crates/core/src/x.rs", "fn f() { unsafe { g(); } }");
        assert_eq!(rules_of(&f), ["safety-comment"]);
        let ok = "fn f() {\n    // SAFETY: g has no preconditions here\n    unsafe { g(); }\n}";
        assert!(findings_in("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn thread_spawn_scoped() {
        let f = findings_in(
            "crates/exec/src/x.rs",
            "fn f() { std::thread::spawn(|| {}); }",
        );
        assert_eq!(rules_of(&f), ["no-thread-spawn"]);
        assert!(findings_in(
            "crates/parallel/src/x.rs",
            "fn f() { std::thread::spawn(|| {}); }"
        )
        .is_empty());
    }

    #[test]
    fn unbounded_queue_flagged_in_server() {
        // A VecDeque with no capacity comparison anywhere in the file.
        let f = findings_in(
            "crates/server/src/x.rs",
            "struct Q { items: VecDeque<u32> }\nfn push(q: &mut Q, v: u32) { q.items.push_back(v); }",
        );
        assert_eq!(rules_of(&f), ["no-unbounded-channel"]);
        // A Vec named like a queue counts too.
        let f = findings_in(
            "crates/server/src/x.rs",
            "struct S { request_queue: Vec<u32> }",
        );
        assert_eq!(rules_of(&f), ["no-unbounded-channel"]);
    }

    #[test]
    fn bounded_queue_with_capacity_check_passes() {
        let src = "struct Q { items: VecDeque<u32>, capacity: usize }\n\
                   fn try_push(q: &mut Q, v: u32) -> bool {\n\
                       if q.items.len() >= q.capacity { return false; }\n\
                       q.items.push_back(v); true\n\
                   }";
        assert!(findings_in("crates/server/src/x.rs", src).is_empty());
        // Imports alone don't buffer anything.
        assert!(findings_in(
            "crates/server/src/x.rs",
            "use std::collections::VecDeque;\nfn f() {}"
        )
        .is_empty());
        // A plain Vec that is not a queue is fine.
        assert!(findings_in(
            "crates/server/src/x.rs",
            "fn f() { let results: Vec<u32> = g(); }"
        )
        .is_empty());
        // Other crates are out of scope.
        assert!(
            findings_in("crates/exec/src/x.rs", "struct Q { items: VecDeque<u32> }").is_empty()
        );
    }

    #[test]
    fn server_joins_spawn_exempt_and_panic_free() {
        assert!(findings_in(
            "crates/server/src/x.rs",
            "fn f() { std::thread::spawn(|| {}); }"
        )
        .is_empty());
        let f = findings_in("crates/server/src/x.rs", "fn f() { y.unwrap(); }");
        assert_eq!(rules_of(&f), ["no-unwrap"]);
    }

    #[test]
    fn pub_doc_required_in_core_exec() {
        let f = findings_in("crates/core/src/x.rs", "pub fn undocumented() {}");
        assert_eq!(rules_of(&f), ["pub-doc"]);
        assert!(findings_in("crates/core/src/x.rs", "/// Documented.\npub fn ok() {}").is_empty());
        // Attributes between doc and item are fine.
        assert!(findings_in(
            "crates/core/src/x.rs",
            "/// Documented.\n#[derive(Debug)]\npub struct S;"
        )
        .is_empty());
        // pub(crate), re-exports, and out-of-line modules are exempt;
        // other crates unscoped.
        assert!(findings_in("crates/core/src/x.rs", "pub(crate) fn internal() {}").is_empty());
        assert!(findings_in("crates/core/src/x.rs", "pub mod selfdoc;").is_empty());
        let f = findings_in("crates/core/src/x.rs", "pub mod inline { pub fn f() {} }");
        assert_eq!(rules_of(&f), ["pub-doc", "pub-doc"]);
        assert!(findings_in("crates/core/src/x.rs", "pub use other::Thing;").is_empty());
        assert!(findings_in("crates/store/src/x.rs", "pub fn undocumented() {}").is_empty());
    }

    #[test]
    fn float_eq_flagged() {
        let f = findings_in("crates/exec/src/x.rs", "fn f(b: f64) -> bool { b == 0.0 }");
        assert_eq!(rules_of(&f), ["no-float-eq"]);
        let f = findings_in(
            "crates/exec/src/x.rs",
            "fn f(a: S, b: S) -> bool { a.score == b.score }",
        );
        assert_eq!(rules_of(&f), ["no-float-eq"]);
        assert!(findings_in("crates/exec/src/x.rs", "fn f(n: u32) -> bool { n == 0 }").is_empty());
    }

    #[test]
    fn bare_file_create_flagged_in_durable_write_crates() {
        let f = findings_in(
            "crates/cli/src/main.rs",
            "fn f() { let file = fs::File::create(path); }",
        );
        assert_eq!(rules_of(&f), ["no-bare-file-create"]);
        // The atomic_write implementation itself is allowlisted.
        assert!(findings_in(
            "crates/store/src/persist.rs",
            "fn f() { let file = File::create(tmp); }"
        )
        .is_empty());
        // Crates outside the durable-write scope are unaffected.
        assert!(findings_in(
            "crates/corpus/src/x.rs",
            "fn f() { let file = File::create(path); }"
        )
        .is_empty());
        // Tests may create files directly.
        assert!(findings_in(
            "crates/cli/src/main.rs",
            "#[cfg(test)]\nmod tests { fn f() { fs::File::create(p); } }"
        )
        .is_empty());
        // An inline allow with a justification suppresses it.
        assert!(findings_in(
            "crates/server/src/x.rs",
            "fn f() {\n    // lint:allow(no-bare-file-create): scratch file in a per-run temp dir\n    let file = File::create(p);\n}"
        )
        .is_empty());
    }

    #[test]
    fn inline_allow_on_same_line() {
        let src = "fn f(b: f64) -> bool { b == 0.0 } // lint:allow(no-float-eq): exact sentinel";
        assert!(findings_in("crates/exec/src/x.rs", src).is_empty());
    }
}
