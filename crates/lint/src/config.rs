//! Which rules apply where, and the standing allowlist.
//!
//! Scopes are expressed as crate directory names under `crates/`. The
//! allowlist entries are deliberate, reviewed exceptions — every entry
//! carries the reason it is sound, and the reason is printed when
//! `--list-allows` is passed so exceptions stay visible.

/// Crates whose library code must be panic-free (`no-unwrap`).
/// `cli` is included: the CLI must report errors, not abort. `server` is
/// included: a panic in a worker kills a request, never the process, but
/// it still must answer 500 — so the handler code itself stays panic-free.
pub const PANIC_FREE_CRATES: &[&str] = &[
    "core", "exec", "index", "store", "xml", "query", "parallel", "cli", "server", "ingest",
    "cluster", "pack",
];

/// Crates whose library code is checked for unchecked slice indexing.
pub const INDEX_CHECKED_CRATES: &[&str] = &[
    "core", "exec", "index", "store", "xml", "query", "parallel", "ingest", "pack",
];

/// Crates checked for direct float equality on scores.
pub const FLOAT_EQ_CRATES: &[&str] = &[
    "core", "exec", "index", "store", "xml", "query", "parallel", "ingest", "pack",
];

/// Crates whose public items require doc comments.
pub const DOC_CRATES: &[&str] = &["core", "exec"];

/// Crates allowed to spawn threads: `parallel` (the document-partitioned
/// access methods), `server` (its accept loop and worker pool are
/// long-lived service threads, not data-parallel workers — routing them
/// through `parallel_map` would serialize the pool behind one call), and
/// `cluster` (the coordinator's worker pool plus scoped per-shard
/// fan-out threads, which are I/O-bound waits, not compute).
pub const SPAWN_EXEMPT_CRATES: &[&str] = &["parallel", "server", "cluster"];

/// Crates whose request-path collections must be bounded
/// (`no-unbounded-channel`): a queue that grows with client demand is a
/// memory-exhaustion vector, so any `Vec`/`VecDeque` used as a queue here
/// must sit behind an explicit capacity check.
pub const BOUNDED_QUEUE_CRATES: &[&str] = &["server", "cluster", "ingest"];

/// Crates that write snapshot/sidecar files (`no-bare-file-create`): a
/// bare `File::create` puts partial bytes at the final path, so a crash
/// mid-write replaces good data with a torn file. All durable writes in
/// these crates must go through `tix_store::persist::atomic_write`.
pub const DURABLE_WRITE_CRATES: &[&str] = &[
    "store", "index", "tix", "cli", "server", "ingest", "cluster", "pack",
];

/// Scoring-path files: no `as` numeric casts here — conversions must be
/// `From`/`TryFrom` or a helper with a justified inline allow. These are
/// the files where a silently wrapping cast would corrupt a relevance
/// score rather than crash.
pub const SCORING_PATHS: &[&str] = &[
    "crates/core/src/scoring.rs",
    "crates/core/src/histogram.rs",
    "crates/core/src/ops/pick.rs",
    "crates/core/src/ops/threshold.rs",
    "crates/exec/src/termjoin.rs",
    "crates/exec/src/phrase.rs",
    "crates/exec/src/pick.rs",
    "crates/exec/src/topk.rs",
    "crates/exec/src/modify.rs",
    "crates/exec/src/pushdown.rs",
    "crates/query/src/stats.rs",
    "crates/query/src/logical.rs",
    "crates/query/src/physical.rs",
    "crates/query/src/execute.rs",
    "crates/query/src/explain.rs",
];

/// Write-path files: the same no-`as`-cast bar as [`SCORING_PATHS`], for
/// a different failure mode — here a silently wrapping cast corrupts a
/// WAL length, LSN, or frame offset, turning crash recovery into data
/// loss instead of a wrong score.
pub const WRITE_PATHS: &[&str] = &[
    "crates/ingest/src/wal.rs",
    "crates/ingest/src/commit.rs",
    "crates/ingest/src/engine.rs",
];

/// A standing per-rule, per-file exception with its justification.
pub struct Allow {
    pub rule: &'static str,
    pub path_suffix: &'static str,
    pub reason: &'static str,
}

/// Reviewed exceptions. Prefer an inline `// lint:allow(rule): reason`
/// for single sites; use a file-level entry only when a whole file's
/// pattern is justified by construction.
pub const ALLOWS: &[Allow] = &[
    Allow {
        rule: "no-slice-index",
        path_suffix: "crates/index/src/build.rs",
        reason: "term ids are dense indices handed out by intern(); lists.len() == term_names.len() by construction",
    },
    Allow {
        rule: "no-slice-index",
        path_suffix: "crates/xml/src/reader.rs",
        reason: "byte-offset cursor is bounds-checked by the is_eof/peek protocol before every access",
    },
    Allow {
        rule: "no-slice-index",
        path_suffix: "crates/xml/src/error.rs",
        reason: "line/column resolution clamps offsets to the source length before slicing",
    },
    Allow {
        rule: "no-slice-index",
        path_suffix: "crates/query/src/lexer.rs",
        reason: "ASCII byte-scanner; every index is guarded by an i/j < bytes.len() loop bound and slices sit on ASCII boundaries",
    },
    Allow {
        rule: "no-bare-file-create",
        path_suffix: "crates/store/src/persist.rs",
        reason: "this file IS the atomic_write implementation — it creates only sibling temp files that are fsynced and renamed over the destination",
    },
];

/// True if `rel` (workspace-relative path) belongs to `krate`'s sources.
pub fn crate_of(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    let (name, _) = rest.split_once('/')?;
    Some(name)
}

/// True if the file is test-only by location (integration tests, benches,
/// examples) rather than by `#[cfg(test)]` span.
pub fn is_test_path(rel: &str) -> bool {
    rel.contains("/tests/") || rel.contains("/benches/") || rel.contains("/examples/")
}

/// Standing allow for (rule, file)?
pub fn allowed(rule: &str, rel: &str) -> Option<&'static Allow> {
    ALLOWS
        .iter()
        .find(|a| a.rule == rule && rel.ends_with(a.path_suffix))
}
