//! `tix-lint` — the workspace's project-rule lint driver.
//!
//! Dependency-free: a lightweight Rust lexer (`lexer`) feeds a small rule
//! engine (`rules`) whose scopes and standing exceptions live in `config`.
//! Run as `cargo run -p tix-lint` from anywhere in the workspace.
//!
//! ```text
//! tix-lint [--deny-all] [--json] [--list-rules] [--list-allows] [--root DIR]
//! ```
//!
//! * default     — print findings, exit 0 (report-only)
//! * `--deny-all` — exit 1 if any finding survives the allowlists (CI mode)
//! * `--json`    — machine-readable report on stdout
//!
//! Suppression: standing per-file entries in `config::ALLOWS` (with
//! reasons), or inline `// lint:allow(rule): reason` on the offending line
//! or the line above.

mod config;
mod lexer;
mod rules;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rules::{FileCtx, Finding};

struct Options {
    deny_all: bool,
    json: bool,
    list_rules: bool,
    list_allows: bool,
    root: Option<PathBuf>,
}

const RULES: &[(&str, &str)] = &[
    (
        "no-unwrap",
        "no .unwrap()/.expect() panics in library or CLI code",
    ),
    (
        "no-slice-index",
        "no unchecked slice indexing in library code",
    ),
    (
        "no-as-cast",
        "no `as` numeric casts in scoring paths (use From/TryFrom)",
    ),
    (
        "safety-comment",
        "every unsafe block carries a // SAFETY: justification",
    ),
    (
        "no-thread-spawn",
        "thread::spawn only inside tix-parallel and tix-server",
    ),
    (
        "no-unbounded-channel",
        "request queues in serving code must carry a capacity check",
    ),
    ("pub-doc", "public items in core/exec require doc comments"),
    ("no-float-eq", "no direct f64 equality on scores"),
    (
        "no-bare-file-create",
        "snapshot writes must use atomic_write, not a bare File::create",
    ),
];

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("tix-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        for (name, desc) in RULES {
            println!("{name:<16} {desc}");
        }
        return ExitCode::SUCCESS;
    }
    if opts.list_allows {
        for a in config::ALLOWS {
            println!(
                "{:<16} {}\n                 reason: {}",
                a.rule, a.path_suffix, a.reason
            );
        }
        return ExitCode::SUCCESS;
    }
    let root = match opts.root.clone().or_else(workspace_root) {
        Some(root) => root,
        None => {
            eprintln!("tix-lint: could not locate the workspace root (pass --root DIR)");
            return ExitCode::from(2);
        }
    };
    let files = collect_sources(&root);
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        let rel = rel_path(&root, path);
        scanned += 1;
        let lx = lexer::lex(&src);
        let ctx = FileCtx::new(&rel, &lx);
        rules::run_all(&ctx, &mut findings);
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));

    if opts.json {
        println!("{}", to_json(&findings, scanned));
    } else {
        for f in &findings {
            println!("warning[{}]: {}", f.rule, f.message);
            println!("  --> {}:{}", f.file, f.line);
            println!("  help: {}", f.help);
        }
        println!(
            "tix-lint: {} finding(s) in {} file(s) scanned",
            findings.len(),
            scanned
        );
    }
    if opts.deny_all && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        deny_all: false,
        json: false,
        list_rules: false,
        list_allows: false,
        root: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => opts.deny_all = true,
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--list-allows" => opts.list_allows = true,
            "--root" => {
                let dir = args.next().ok_or("--root requires a directory")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                return Err("usage: tix-lint [--deny-all] [--json] [--list-rules] [--list-allows] [--root DIR]".into());
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

/// The workspace root: walk up from this crate's manifest dir (compile
/// time) or the current directory (runtime fallback) to the first
/// directory whose Cargo.toml declares `[workspace]`.
fn workspace_root() -> Option<PathBuf> {
    let compile_time = Path::new(env!("CARGO_MANIFEST_DIR"));
    let candidates = [
        compile_time
            .parent()
            .and_then(Path::parent)
            .map(Path::to_path_buf),
        std::env::current_dir().ok(),
    ];
    for start in candidates.into_iter().flatten() {
        let mut dir = start.as_path();
        loop {
            let manifest = dir.join("Cargo.toml");
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir.to_path_buf());
                }
            }
            match dir.parent() {
                Some(parent) => dir = parent,
                None => break,
            }
        }
    }
    None
}

/// Every `.rs` file under `crates/*/src`, sorted for deterministic output.
/// Integration tests and benches are skipped here; `#[cfg(test)]` spans
/// inside src files are skipped by the rule engine.
fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates) else {
        return out;
    };
    for entry in entries.flatten() {
        let src = entry.path().join("src");
        walk(&src, &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Hand-rolled JSON writer (the workspace has no serde and takes no new
/// dependencies).
fn to_json(findings: &[Finding], scanned: usize) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"files_scanned\": {scanned},\n"));
    s.push_str(&format!("  \"total_findings\": {},\n", findings.len()));
    s.push_str("  \"by_rule\": {");
    let mut first = true;
    for (rule, _) in RULES {
        let count = findings.iter().filter(|f| f.rule == *rule).count();
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!("\n    \"{rule}\": {count}"));
    }
    s.push_str("\n  },\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"help\": \"{}\"}}",
            esc(f.rule),
            esc(&f.file),
            f.line,
            esc(&f.message),
            esc(f.help)
        ));
    }
    s.push_str("\n  ]\n}");
    s
}

fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}
