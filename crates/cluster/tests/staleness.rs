//! Replica-staleness end-to-end tests: a follower that has not applied
//! the coordinator's acked-LSN watermark must answer 403 to gated reads
//! — never a divergent result — and the coordinator must route around
//! it until it catches up.
//!
//! The followers here are started **detached** (`primary: None`, no
//! pull loop), so the tests control exactly when replication happens by
//! pulling `/wal?from_lsn=` themselves and feeding the image through
//! [`Server::apply_wal_image`].

use std::time::Duration;

use tix_cluster::topology::{ShardTopology, Topology};
use tix_cluster::{client, local::scratch_dir, Coordinator, CoordinatorConfig, Json};
use tix_server::{Server, ServerConfig};

const TIMEOUT: Duration = Duration::from_secs(10);

fn node_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 32,
        ..ServerConfig::default()
    }
}

const CORPUS: [(&str, &str); 3] = [
    ("a.xml", "<d><s><p>alpha beta gamma</p></s></d>"),
    ("b.xml", "<d><p>beta beta delta</p><p>alpha</p></d>"),
    ("c.xml", "<d><p>zeta alpha beta</p></d>"),
];

fn load(addr: &str) {
    for (name, xml) in CORPUS {
        let path = format!("/documents?name={}", client::encode_component(name));
        let r = client::request(addr, "POST", &path, xml.as_bytes(), TIMEOUT).unwrap();
        assert_eq!(r.status, 201, "{}", r.text());
    }
}

#[test]
fn behind_follower_answers_403_until_caught_up_and_never_diverges() {
    let dir = scratch_dir("stale-direct");
    let primary = Server::start_primary(dir.join("primary"), node_config()).unwrap();
    let follower = Server::start_follower(dir.join("follower"), None, node_config()).unwrap();
    let p = primary.addr().to_string();
    let f = follower.addr().to_string();

    load(&p);
    let watermark = primary.applied_lsn();
    assert_eq!(watermark, CORPUS.len() as u64);
    assert_eq!(follower.applied_lsn(), 0);

    // A gated read against the behind follower is refused outright.
    let path = format!("/search?q=alpha&k=10&min_lsn={watermark}");
    let r = client::get(&f, &path, TIMEOUT).unwrap();
    assert_eq!(r.status, 403, "{}", r.text());
    let doc = r.json().unwrap();
    assert_eq!(
        doc.get("error").unwrap().str(),
        Some("replica behind watermark")
    );
    assert_eq!(doc.get("applied_lsn").unwrap().u64(), Some(0));
    assert_eq!(doc.get("min_lsn").unwrap().u64(), Some(watermark));
    assert_eq!(doc.get("role").unwrap().str(), Some("follower"));

    // The cluster read path is gated identically.
    let path = format!("/cluster/search?q=alpha&k=10&min_lsn={watermark}");
    let r = client::get(&f, &path, TIMEOUT).unwrap();
    assert_eq!(r.status, 403, "{}", r.text());

    // Ungated, the follower serves its honest (empty) prefix of history
    // — stale is allowed without a watermark, divergence never is: every
    // hit it could return is one the primary also returned at that LSN.
    let r = client::get(&f, "/search?q=alpha&k=10", TIMEOUT).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert_eq!(r.json().unwrap().get("count").unwrap().u64(), Some(0));

    // Ship the WAL by hand: the transfer payload is a verbatim WAL
    // image, applied through the follower's own durable pipeline.
    let image = client::get(&p, "/wal?from_lsn=0", TIMEOUT).unwrap();
    assert_eq!(image.status, 200);
    let applied = follower.apply_wal_image(&image.body).unwrap();
    assert_eq!(applied, watermark);
    assert_eq!(follower.applied_lsn(), watermark);

    // The same gated read now succeeds, byte-identical to the primary.
    let path = format!("/search?q=alpha&k=10&min_lsn={watermark}");
    let from_follower = client::get(&f, &path, TIMEOUT).unwrap();
    assert_eq!(from_follower.status, 200, "{}", from_follower.text());
    let from_primary = client::get(&p, "/search?q=alpha&k=10", TIMEOUT).unwrap();
    assert_eq!(from_primary.status, 200);
    assert_eq!(
        from_follower.body, from_primary.body,
        "caught-up follower diverged"
    );

    follower.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn coordinator_routes_around_a_stale_replica_and_uses_it_after_catch_up() {
    let dir = scratch_dir("stale-route");
    let primary = Server::start_primary(dir.join("primary"), node_config()).unwrap();
    // Detached follower: it will NOT catch up on its own, so every
    // coordinator read that tries it first must fall back to the primary.
    let replica = Server::start_follower(dir.join("replica"), None, node_config()).unwrap();
    let topology = Topology {
        shards: vec![ShardTopology {
            primary: primary.addr().to_string(),
            replicas: vec![replica.addr().to_string()],
        }],
    };
    let coordinator = Coordinator::start(topology, CoordinatorConfig::default()).unwrap();
    let c = coordinator.addr().to_string();

    load(&c);
    let watermark = primary.applied_lsn();
    assert_eq!(
        coordinator.watermark(0),
        watermark,
        "write acks drive the watermark"
    );

    // Reads stay correct while the replica lags: the coordinator eats
    // the replica's 403 and answers from the primary — byte-identical
    // to a single node holding the corpus.
    let expected = expected_alpha_body();
    for _ in 0..4 {
        let r = client::get(&c, "/search?q=alpha&k=10", TIMEOUT).unwrap();
        assert_eq!(r.status, 200, "{}", r.text());
        assert_eq!(r.text(), expected, "stale replica leaked into a read");
    }
    let metrics = Json::parse(&coordinator.metrics_json()).unwrap();
    let fanout = metrics.get("fanout").unwrap();
    assert!(
        fanout.get("stale_retries").unwrap().u64().unwrap() >= 1,
        "no 403 observed"
    );
    assert!(fanout.get("replica_fallbacks").unwrap().u64().unwrap() >= 1);
    // The stale replica never served a cluster read.
    let replica_metrics = Json::parse(&replica.metrics_json()).unwrap();
    let stale_rejects = replica_metrics
        .get("replication")
        .and_then(|r| r.get("stale_rejects"))
        .and_then(Json::u64)
        .unwrap_or(0);
    assert!(
        stale_rejects >= 1,
        "replica never rejected a gated read: {replica_metrics:?}"
    );

    // Catch the replica up by hand; gated reads against it now pass, so
    // the coordinator's round-robin can use it again.
    let image = client::get(&primary.addr().to_string(), "/wal?from_lsn=0", TIMEOUT).unwrap();
    assert_eq!(replica.apply_wal_image(&image.body).unwrap(), watermark);
    let before = cluster_reads_served(&replica);
    for _ in 0..4 {
        let r = client::get(&c, "/search?q=alpha&k=10", TIMEOUT).unwrap();
        assert_eq!(r.status, 200, "{}", r.text());
        assert_eq!(r.text(), expected, "replica-served read diverged");
    }
    assert!(
        cluster_reads_served(&replica) > before,
        "caught-up replica still bypassed"
    );

    coordinator.shutdown();
    replica.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

/// The coordinator `/search?q=alpha&k=10` body a correct cluster must
/// produce: the canonical single-node ranking over the corpus, rendered
/// with the server's default pick parameters.
fn expected_alpha_body() -> String {
    let mut db = tix::Database::new();
    for (name, xml) in CORPUS {
        db.load(name, xml).unwrap();
    }
    db.build_index();
    let pick = tix::exec::pick::PickParams {
        relevance_threshold: 0.5,
        fraction: 0.5,
    };
    tix_cluster::merge::expected_search_body(&db, &["alpha"], pick, 10)
}

/// How many scatter-gather reads this node has answered (its
/// `endpoints.cluster` counter).
fn cluster_reads_served(node: &Server) -> u64 {
    Json::parse(&node.metrics_json())
        .unwrap()
        .get("endpoints")
        .and_then(|e| e.get("cluster"))
        .and_then(Json::u64)
        .unwrap_or(0)
}
