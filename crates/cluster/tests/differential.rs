//! Differential property test for scatter-gather correctness: after ANY
//! randomized interleaving of inserts, deletes, and forced checkpoints
//! applied through the coordinator, `/search` and `/phrase` responses
//! must be **byte-identical** — score bits included — to the canonical
//! body computed from a single-node database holding the union corpus,
//! for every shard count in {1, 2, 4} × per-node thread count in
//! {1, 2, 8}.
//!
//! This exercises the whole pipeline: deterministic routing, per-shard
//! WAL + checkpoint ingest, top-k-with-ties + §4.2 bounds on the shard
//! side, bit-exact score transport, and the coordinator's canonical
//! merge (which asserts the merge bound under `check-invariants`).

use std::collections::BTreeMap;

use proptest::prelude::*;
use tix::exec::pick::PickParams;
use tix::Database;
use tix_cluster::{local::scratch_dir, merge, LocalCluster};
use tix_server::ServerConfig;

// Names chosen to spread over shards: under the CRC-32 router these
// cover both shards at 2 shards and all four at 4.
const NAMES: [&str; 6] = ["a0.xml", "a8.xml", "b0.xml", "b8.xml", "c0.xml", "c8.xml"];
const DOCS: [&str; 5] = [
    "<d><s><p>alpha beta gamma</p></s></d>",
    "<d><p>beta beta delta</p><p>alpha</p></d>",
    "<d><s><p>gamma</p><p>epsilon alpha</p></s></d>",
    "<d><p>zeta alpha beta</p><p>alpha beta</p></d>",
    "<d><s><p>beta gamma epsilon</p></s><p>alpha beta</p></d>",
];

/// (kind, name index, doc index): kind selects insert / remove /
/// checkpoint with the same 5/4/1 weighting as the ingest differential.
type Op = (u8, u8, u8);

/// The queries whose coordinator responses are compared byte-for-byte.
/// `k` spans "truncates hard", "tie-heavy", and "returns everything".
const SEARCHES: [(&str, usize); 4] = [
    ("alpha", 1),
    ("alpha", 3),
    ("beta gamma", 5),
    ("alpha beta epsilon", 50),
];
const PHRASES: [&str; 2] = ["alpha beta", "beta beta"];

/// Server-side `/search` defaults (threshold 0.5, fraction 0.5).
fn server_pick() -> PickParams {
    PickParams {
        relevance_threshold: 0.5,
        fraction: 0.5,
    }
}

/// Drive the ops through a coordinator over `shards` shards with
/// `threads`-way per-node query parallelism, mirroring acknowledged
/// mutations into `model`; then compare every probe query bytewise
/// against the single-node expectation.
fn run_case(ops: &[Op], shards: usize, threads: usize) {
    let dir = scratch_dir(&format!("diff-{shards}-{threads}"));
    let config = ServerConfig {
        workers: 2,
        queue_capacity: 32,
        request_threads: threads,
        ..ServerConfig::default()
    };
    let cluster = LocalCluster::start_with(&dir, shards, 0, config).unwrap();
    let mut model: BTreeMap<&str, &str> = BTreeMap::new();

    for &(kind, name_i, doc_i) in ops {
        let name = NAMES[name_i as usize % NAMES.len()];
        match kind % 10 {
            0..=4 => {
                let xml = DOCS[doc_i as usize % DOCS.len()];
                let (status, body) = cluster.insert(name, xml).unwrap();
                if model.contains_key(name) {
                    assert_eq!(status, 409, "duplicate insert of {name}: {body}");
                } else {
                    assert_eq!(status, 201, "insert of {name}: {body}");
                    model.insert(name, xml);
                }
            }
            5..=8 => {
                let (status, body) = cluster.remove(name).unwrap();
                if model.remove(name).is_some() {
                    assert_eq!(status, 200, "remove of {name}: {body}");
                } else {
                    assert_eq!(status, 404, "remove of missing {name}: {body}");
                }
            }
            _ => {
                let (status, body) = cluster.request("POST", "/admin/checkpoint", &[]).unwrap();
                assert_eq!(status, 200, "checkpoint: {body}");
            }
        }
    }

    // The single-node union database the cluster must be
    // indistinguishable from.
    let mut union_db = Database::new();
    for (name, xml) in &model {
        union_db.load(name, xml).unwrap();
    }
    union_db.build_index();

    for (terms, k) in SEARCHES {
        let term_refs: Vec<&str> = terms.split(' ').collect();
        let expected = merge::expected_search_body(&union_db, &term_refs, server_pick(), k);
        let path = format!(
            "/search?q={}&k={k}",
            tix_cluster::client::encode_component(terms)
        );
        let (status, body) = cluster.get(&path).unwrap();
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            body, expected,
            "shards={shards} threads={threads} q={terms:?} k={k}: coordinator body diverged from single-node"
        );
    }
    for phrase in PHRASES {
        let term_refs: Vec<&str> = phrase.split(' ').collect();
        let expected = merge::expected_phrase_body(&union_db, &term_refs);
        let path = format!(
            "/phrase?q={}",
            tix_cluster::client::encode_component(phrase)
        );
        let (status, body) = cluster.get(&path).unwrap();
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            body, expected,
            "shards={shards} threads={threads} phrase={phrase:?}: coordinator body diverged from single-node"
        );
    }

    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn scatter_gather_is_byte_identical_to_single_node(
        ops in prop::collection::vec((0u8..10, 0u8..6, 0u8..5), 1..12)
    ) {
        for shards in [1usize, 2, 4] {
            for threads in [1usize, 2, 8] {
                run_case(&ops, shards, threads);
            }
        }
    }
}
