//! End-to-end cluster tests over real sockets: sharded ingest through
//! the coordinator, scatter-gather reads, query routing, replication
//! convergence, merged metrics, and cluster health.

use std::time::Duration;

use tix_cluster::{local::scratch_dir, Json, LocalCluster};

fn boot(label: &str, shards: usize, replicas: usize) -> (LocalCluster, std::path::PathBuf) {
    let dir = scratch_dir(label);
    let cluster = LocalCluster::start(&dir, shards, replicas).unwrap();
    (cluster, dir)
}

fn teardown(cluster: LocalCluster, dir: std::path::PathBuf) {
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

// Names chosen to spread over shards: under the CRC-32 router the six
// documents cover both shards at 2 shards and all four at 4.
const CORPUS: [(&str, &str); 6] = [
    ("a0.xml", "<d><s><p>alpha beta gamma</p></s></d>"),
    ("a8.xml", "<d><p>beta beta delta</p><p>alpha</p></d>"),
    ("b0.xml", "<d><s><p>gamma</p><p>epsilon alpha</p></s></d>"),
    ("b8.xml", "<d><p>zeta alpha beta</p></d>"),
    ("c0.xml", "<d><p>alpha beta</p><p>alpha beta</p></d>"),
    ("c8.xml", "<d><s><p>beta gamma</p></s><p>alpha</p></d>"),
];

fn load_corpus(cluster: &LocalCluster) {
    for (name, xml) in CORPUS {
        let (status, body) = cluster.insert(name, xml).unwrap();
        assert_eq!(status, 201, "{name}: {body}");
    }
}

#[test]
fn writes_route_by_name_hash_and_reads_see_every_shard() {
    let (cluster, dir) = boot("route", 2, 0);
    load_corpus(&cluster);

    // Placement matches the deterministic router: each primary holds
    // exactly the documents hashed to its shard.
    let mut expected = [0usize; 2];
    for (name, _) in CORPUS {
        expected[tix_cluster::shard_of(name, 2)] += 1;
    }
    for (shard, group) in cluster.shards().iter().enumerate() {
        let health = group.primary.metrics_json();
        assert!(!health.is_empty());
        let docs = group.primary.reload(|db| db.store().doc_count());
        assert_eq!(docs, expected[shard], "shard {shard} doc count");
    }
    assert!(expected.iter().all(|&n| n > 0), "corpus spans both shards");

    // A scatter-gather search sees hits from documents on both shards.
    let (status, body) = cluster.get("/search?q=alpha&k=20").unwrap();
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).unwrap();
    let names: Vec<&str> = doc
        .get("results")
        .unwrap()
        .items()
        .iter()
        .filter_map(|r| r.get("name").and_then(Json::str))
        .collect();
    let shards_hit: std::collections::HashSet<usize> =
        names.iter().map(|n| tix_cluster::shard_of(n, 2)).collect();
    assert_eq!(shards_hit.len(), 2, "hits from one shard only: {names:?}");

    // Phrase scatter-gather: "alpha beta" occurs on specific documents.
    let (status, body) = cluster.get("/phrase?q=alpha+beta").unwrap();
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert!(doc.get("count").unwrap().u64().unwrap() >= 2, "{body}");

    teardown(cluster, dir);
}

#[test]
fn query_routes_to_the_owning_shard_and_rejects_cross_shard_joins() {
    let (cluster, dir) = boot("query", 2, 0);
    load_corpus(&cluster);

    // Single-document query: forwarded to the shard that owns a0.xml.
    let q = "For $p in document(\"a0.xml\")//p Return $p";
    let (status, body) = cluster.request("POST", "/query", q.as_bytes()).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("alpha beta gamma"), "{body}");

    // A document that exists nowhere: the owning shard's own error
    // passes through verbatim.
    let q = "For $p in document(\"missing.xml\")//p Return $p";
    let (status, body) = cluster.request("POST", "/query", q.as_bytes()).unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("is not loaded"), "{body}");

    // Parse errors are caught at the coordinator.
    let (status, body) = cluster
        .request("POST", "/query", b"Fro $x in nonsense")
        .unwrap();
    assert_eq!(status, 400, "{body}");

    // A join whose two documents live on different shards answers 501.
    let (one, other) = {
        let mut by_shard: [Option<&str>; 2] = [None, None];
        for (name, _) in CORPUS {
            by_shard[tix_cluster::shard_of(name, 2)].get_or_insert(name);
        }
        (by_shard[0].unwrap(), by_shard[1].unwrap())
    };
    let q =
        format!("For $a in document(\"{one}\")//p For $b in document(\"{other}\")//p Return $a");
    let (status, body) = cluster.request("POST", "/query", q.as_bytes()).unwrap();
    assert_eq!(status, 501, "{body}");
    assert!(body.contains("cross-shard"), "{body}");

    teardown(cluster, dir);
}

#[test]
fn followers_replicate_and_reject_writes() {
    let (cluster, dir) = boot("replicate", 2, 1);
    load_corpus(&cluster);
    assert!(
        cluster.wait_replicated(Duration::from_secs(20)),
        "followers never caught up"
    );
    for group in cluster.shards() {
        let target = group.primary.applied_lsn();
        for replica in &group.replicas {
            assert_eq!(replica.applied_lsn(), target);
            let docs = replica.reload(|db| db.store().doc_count());
            let primary_docs = group.primary.reload(|db| db.store().doc_count());
            assert_eq!(docs, primary_docs, "replica store diverged");
        }
    }

    // Writes against a follower are refused: replication is the only
    // way data reaches a replica.
    let group = &cluster.shards()[0];
    let addr = group.replicas[0].addr().to_string();
    let response = tix_cluster::client::request(
        &addr,
        "POST",
        "/documents?name=direct.xml",
        b"<d><p>x</p></d>",
        Duration::from_secs(5),
    )
    .unwrap();
    assert_eq!(response.status, 403, "{}", response.text());

    // Removals replicate too.
    let (status, body) = cluster.remove("a0.xml").unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(cluster.wait_replicated(Duration::from_secs(20)));
    let shard = tix_cluster::shard_of("a0.xml", 2);
    for replica in &cluster.shards()[shard].replicas {
        let has = replica.reload(|db| {
            (0..db.store().doc_count())
                .any(|i| db.store().doc(tix::store::DocId(i as u32)).name() == "a0.xml")
        });
        assert!(!has, "a0.xml still on a replica after replicated removal");
    }

    teardown(cluster, dir);
}

#[test]
fn health_reports_roles_generations_and_lsns() {
    let (cluster, dir) = boot("health", 2, 1);
    load_corpus(&cluster);
    assert!(cluster.wait_replicated(Duration::from_secs(20)));

    let (status, body) = cluster.get("/health").unwrap();
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("status").unwrap().str(), Some("ok"), "{body}");
    assert_eq!(doc.get("shards").unwrap().u64(), Some(2));
    let nodes = doc.get("nodes").unwrap().items();
    assert_eq!(nodes.len(), 4);
    for node in nodes {
        let health = node.get("health").unwrap();
        let role = health.get("role").and_then(Json::str).unwrap();
        let expected = node.get("expected_role").and_then(Json::str).unwrap();
        assert_eq!(role, expected, "{body}");
        assert!(health.get("generation").and_then(Json::u64).is_some());
        assert!(health.get("applied_lsn").and_then(Json::u64).is_some());
        assert!(health.get("checkpoint_seq").and_then(Json::u64).is_some());
    }

    // /status is an alias.
    let (status, alias) = cluster.get("/status").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        Json::parse(&alias).unwrap().get("shards").unwrap().u64(),
        Some(2)
    );

    teardown(cluster, dir);
}

#[test]
fn metrics_merge_sums_nodes_and_keeps_breakdown() {
    let (cluster, dir) = boot("metrics", 2, 1);
    load_corpus(&cluster);
    for _ in 0..3 {
        let (status, _) = cluster.get("/search?q=alpha&k=5").unwrap();
        assert_eq!(status, 200);
    }

    let (status, body) = cluster.get("/metrics").unwrap();
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).unwrap();

    // The coordinator's own section carries its fan-out accounting.
    let coordinator = doc.get("coordinator").unwrap();
    assert!(
        coordinator
            .get("fanout")
            .unwrap()
            .get("requests")
            .unwrap()
            .u64()
            .unwrap()
            > 0
    );
    assert_eq!(
        coordinator
            .get("endpoints")
            .unwrap()
            .get("search")
            .unwrap()
            .u64(),
        Some(3)
    );

    // The merged section sums per-node counters: every shard served
    // cluster reads, so the cluster-wide count is ≥ the per-node one.
    let cluster_doc = doc.get("cluster").unwrap();
    let merged_cluster_reqs = cluster_doc
        .get("endpoints")
        .unwrap()
        .get("cluster")
        .unwrap()
        .u64()
        .unwrap();
    assert!(
        merged_cluster_reqs >= 6,
        "{merged_cluster_reqs} cluster-endpoint hits merged"
    );
    // Histograms merged bucket-wise: count equals the bucket sum.
    let latency = cluster_doc.get("latency").unwrap();
    let bucket_sum: u64 = latency
        .get("buckets")
        .unwrap()
        .items()
        .iter()
        .filter_map(Json::u64)
        .sum();
    assert_eq!(latency.get("count").unwrap().u64(), Some(bucket_sum));

    // Per-node breakdown lists every node with its own document.
    let nodes = doc.get("nodes").unwrap().items();
    assert_eq!(nodes.len(), 4);
    for node in nodes {
        assert!(node.get("metrics").unwrap().get("requests_total").is_some());
    }

    teardown(cluster, dir);
}

#[test]
fn admin_checkpoint_hits_every_primary() {
    let (cluster, dir) = boot("checkpoint", 2, 0);
    load_corpus(&cluster);
    let (status, body) = cluster.request("POST", "/admin/checkpoint", &[]).unwrap();
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).unwrap();
    let shards = doc.get("shards").unwrap().items();
    assert_eq!(shards.len(), 2);
    for shard in shards {
        assert!(
            shard.get("checkpoint").and_then(Json::u64).unwrap() >= 1,
            "{body}"
        );
    }
    teardown(cluster, dir);
}

#[test]
fn cluster_survives_restart_of_every_node() {
    let dir = scratch_dir("restart");
    {
        let cluster = LocalCluster::start(&dir, 2, 1).unwrap();
        load_corpus(&cluster);
        assert!(cluster.wait_replicated(Duration::from_secs(20)));
        cluster.shutdown();
    }
    // Same directories, fresh processes-worth of servers: recovery
    // replays checkpoint + WAL on every node; the corpus survives.
    let cluster = LocalCluster::start(&dir, 2, 1).unwrap();
    let (status, body) = cluster.get("/search?q=alpha&k=20").unwrap();
    assert_eq!(status, 200, "{body}");
    let count = Json::parse(&body)
        .unwrap()
        .get("count")
        .unwrap()
        .u64()
        .unwrap();
    assert!(count > 0, "corpus lost across restart: {body}");
    teardown(cluster, dir);
}
