//! Torn and corrupted `/wal` transfers: the replication payload is a
//! verbatim WAL image, so the follower's prefix-durability scanner must
//! turn every damaged transfer into "apply the committed prefix, pull
//! the rest later" — never into a decoded bad frame.
//!
//! Damage is injected with `tix::store::faultio` — the same single-bit
//! and short-read fault harness the storage formats are tested with —
//! driven over a real image pulled from a live primary's `/wal`.

use std::io::Read;
use std::time::Duration;

use tix::store::faultio::CorruptingReader;
use tix_cluster::{client, local::scratch_dir};
use tix_ingest::{scan_bytes, WAL_HEADER_LEN};
use tix_server::{Server, ServerConfig};

const TIMEOUT: Duration = Duration::from_secs(10);

fn node_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 32,
        ..ServerConfig::default()
    }
}

const CORPUS: [(&str, &str); 3] = [
    ("a.xml", "<d><s><p>alpha beta gamma</p></s></d>"),
    ("b.xml", "<d><p>beta beta delta</p><p>alpha</p></d>"),
    ("c.xml", "<d><p>zeta alpha beta</p></d>"),
];

/// A primary loaded with the corpus, a detached follower, and the
/// pristine `/wal?from_lsn=0` image shipped between them.
fn rig(label: &str) -> (Server, Server, Vec<u8>, std::path::PathBuf) {
    let dir = scratch_dir(label);
    let primary = Server::start_primary(dir.join("primary"), node_config()).unwrap();
    let follower = Server::start_follower(dir.join("follower"), None, node_config()).unwrap();
    let p = primary.addr().to_string();
    for (name, xml) in CORPUS {
        let path = format!("/documents?name={}", client::encode_component(name));
        let r = client::request(&p, "POST", &path, xml.as_bytes(), TIMEOUT).unwrap();
        assert_eq!(r.status, 201, "{}", r.text());
    }
    let image = client::get(&p, "/wal?from_lsn=0", TIMEOUT).unwrap();
    assert_eq!(image.status, 200);
    (primary, follower, image.body, dir)
}

fn teardown(primary: Server, follower: Server, dir: std::path::PathBuf) {
    follower.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

/// Byte offsets where each frame starts, plus the image end.
fn frame_offsets(image: &[u8]) -> Vec<usize> {
    let scan = scan_bytes(image).unwrap();
    let mut offsets: Vec<usize> = scan
        .entries
        .iter()
        .map(|e| usize::try_from(e.offset).unwrap())
        .collect();
    offsets.push(usize::try_from(scan.valid_len).unwrap());
    offsets
}

#[test]
fn torn_tail_applies_only_the_committed_prefix_and_the_next_pull_resumes() {
    let (primary, follower, image, dir) = rig("torn-tail");
    let offsets = frame_offsets(&image);
    assert_eq!(offsets.len(), CORPUS.len() + 1);

    // Cut mid-way through the last frame, as a connection dropped during
    // the transfer would.
    let cut = (offsets[CORPUS.len() - 1] + offsets[CORPUS.len()]) / 2;
    let torn = &image[..cut];
    let applied = follower.apply_wal_image(torn).unwrap();
    assert_eq!(
        applied,
        CORPUS.len() as u64 - 1,
        "torn frame leaked through"
    );
    assert_eq!(follower.applied_lsn(), CORPUS.len() as u64 - 1);

    // The follower's next pull picks up from its applied LSN and lands
    // the missing record; re-applying the overlap is harmless.
    let from = follower.applied_lsn();
    let resume = client::get(
        &primary.addr().to_string(),
        &format!("/wal?from_lsn={from}"),
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(resume.status, 200);
    assert_eq!(follower.apply_wal_image(&resume.body).unwrap(), 1);
    assert_eq!(follower.applied_lsn(), primary.applied_lsn());
    let docs = follower.reload(|db| db.store().doc_count());
    assert_eq!(docs, CORPUS.len());

    teardown(primary, follower, dir);
}

#[test]
fn bit_flip_in_a_frame_stops_apply_before_the_bad_record() {
    // Flip one bit in each interesting spot of the first frame — length
    // prefix, payload, CRC — and in the middle frame. In every case the
    // scanner must stop at the damaged frame: records before it apply,
    // the bad frame and everything after never do.
    let (primary, follower, image, dir) = rig("bit-flip");
    let offsets = frame_offsets(&image);
    let header = usize::try_from(WAL_HEADER_LEN).unwrap();
    let cases: [(usize, u64); 4] = [
        (0, header as u64 + 1),         // first frame's length prefix
        (0, header as u64 + 4 + 2),     // first frame's payload
        (0, offsets[1] as u64 - 1),     // first frame's CRC
        (1, offsets[1] as u64 + 4 + 3), // middle frame's payload
    ];
    for (frame, offset) in cases {
        let mut corrupted = Vec::new();
        CorruptingReader::flip_bit(&image[..], offset, 3)
            .read_to_end(&mut corrupted)
            .unwrap();
        assert_ne!(corrupted, image, "offset {offset} out of range");
        let scan = scan_bytes(&corrupted).unwrap();
        assert_eq!(
            scan.entries.len(),
            frame,
            "offset {offset}: bad frame decoded"
        );
    }

    // Apply a payload-corrupted image end-to-end: nothing lands, and the
    // pristine image afterwards brings the follower fully up to date.
    let mut corrupted = Vec::new();
    CorruptingReader::flip_bit(&image[..], header as u64 + 4 + 2, 3)
        .read_to_end(&mut corrupted)
        .unwrap();
    assert_eq!(follower.apply_wal_image(&corrupted).unwrap(), 0);
    assert_eq!(follower.applied_lsn(), 0);
    assert_eq!(
        follower.apply_wal_image(&image).unwrap(),
        CORPUS.len() as u64
    );
    assert_eq!(follower.applied_lsn(), primary.applied_lsn());

    teardown(primary, follower, dir);
}

#[test]
fn mangled_header_is_a_hard_error_not_a_silent_skip() {
    let (primary, follower, image, dir) = rig("bad-header");
    // A damaged header means the image itself is garbage — that is disk
    // or transport damage past what frame CRCs cover, so apply refuses.
    for offset in 0..WAL_HEADER_LEN {
        let mut corrupted = Vec::new();
        CorruptingReader::flip_bit(&image[..], offset, 0)
            .read_to_end(&mut corrupted)
            .unwrap();
        let err = follower.apply_wal_image(&corrupted).unwrap_err();
        assert!(err.contains("bad WAL image"), "offset {offset}: {err}");
    }
    // Truncated-to-nothing transfers fail the same way.
    assert!(follower.apply_wal_image(&[]).is_err());
    assert!(follower
        .apply_wal_image(&image[..WAL_HEADER_LEN as usize - 1])
        .is_err());
    assert_eq!(
        follower.applied_lsn(),
        0,
        "damaged images mutated the follower"
    );

    teardown(primary, follower, dir);
}

#[test]
fn wal_feed_reports_caught_up_and_gap_conditions() {
    let (primary, follower, image, dir) = rig("feed-edges");
    let p = primary.addr().to_string();

    // A caught-up requester gets a header-only image; applying it is a
    // no-op.
    let last = primary.applied_lsn();
    let empty = client::get(&p, &format!("/wal?from_lsn={last}"), TIMEOUT).unwrap();
    assert_eq!(empty.status, 200);
    assert_eq!(empty.body.len(), WAL_HEADER_LEN as usize);
    assert_eq!(follower.apply_wal_image(&empty.body).unwrap(), 0);
    // Same for a requester claiming an LSN from the future.
    let ahead = client::get(&p, &format!("/wal?from_lsn={}", last + 10), TIMEOUT).unwrap();
    assert_eq!(ahead.status, 200);
    assert_eq!(ahead.body.len(), WAL_HEADER_LEN as usize);

    // An image that skips past the follower's applied LSN is a hard
    // error (discontinuity), applied only up to the gap.
    let offsets = frame_offsets(&image);
    let mut gapped = image[..usize::try_from(WAL_HEADER_LEN).unwrap()].to_vec();
    gapped.extend_from_slice(&image[offsets[1]..]); // frames 2.. without frame 1
    let err = follower.apply_wal_image(&gapped).unwrap_err();
    assert!(err.contains("discontinuity"), "{err}");
    assert_eq!(follower.applied_lsn(), 0);

    // A server that does NOT retain its WAL across checkpoints answers
    // 410 with the earliest servable LSN once the suffix is gone — the
    // signal that a follower must resync from a snapshot instead.
    let standalone_dir = dir.join("standalone");
    let standalone = Server::start_live(&standalone_dir, node_config()).unwrap();
    let s = standalone.addr().to_string();
    let r = client::request(
        &s,
        "POST",
        "/documents?name=solo.xml",
        b"<d><p>alpha</p></d>",
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(r.status, 201, "{}", r.text());
    let r = client::request(&s, "POST", "/admin/checkpoint", &[], TIMEOUT).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    let gap = client::get(&s, "/wal?from_lsn=0", TIMEOUT).unwrap();
    assert_eq!(gap.status, 410, "{}", gap.text());
    let doc = gap.json().unwrap();
    assert_eq!(doc.get("error").unwrap().str(), Some("wal gap"));
    assert_eq!(doc.get("requested").unwrap().u64(), Some(0));
    assert!(
        doc.get("earliest").unwrap().u64().unwrap() >= 1,
        "{}",
        gap.text()
    );
    standalone.shutdown();

    teardown(primary, follower, dir);
}
