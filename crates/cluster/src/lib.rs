//! # tix-cluster — the sharded, replicated serving tier
//!
//! The paper ran TIX inside TIMBER on one machine; this crate scales
//! that serving layer out, std-only, on top of the workspace's existing
//! pieces:
//!
//! * **Sharded ingest** ([`router`], [`topology`]) — documents route to
//!   shards by a deterministic hash of the document *name* (the same
//!   CRC-32 the storage formats use), so placement needs no directory
//!   service. Each shard primary is an unmodified `tix-ingest`
//!   WAL + checkpoint pipeline with its own LSN sequence.
//! * **Scatter-gather top-k** ([`coordinator`], [`merge`]) — the
//!   coordinator fans queries out to every shard's `/cluster/*`
//!   endpoint, which answers its local top-k **with ties** plus an
//!   exclusive §4.2 bound on every score it withheld. The merge is
//!   provably exact: the global k-th score must dominate every
//!   truncated shard's bound, asserted through
//!   [`tix_invariants::assert_scatter_merge_bound`] under
//!   `check-invariants`. Scores cross the wire as raw `f64` bits, and
//!   hits are addressed by `(document name, node index)` — not by
//!   layout-dependent `DocId`s — so the merged response is
//!   byte-identical to a single node over the union corpus (checked by
//!   the differential suite in `tests/`).
//! * **Replication** — followers pull `/wal?from_lsn=` from their
//!   primary; the transfer payload *is* the on-disk WAL format
//!   (header + CRC-framed records), re-scanned with the prefix-durable
//!   scanner on apply, so a torn or corrupted transfer can never apply
//!   a bad frame. Reads carry the coordinator's acked-LSN watermark as
//!   `min_lsn`; a behind replica answers 403 and the coordinator routes
//!   around it — a read after an acknowledged write never observes a
//!   replica that missed the write.
//!
//! [`local::LocalCluster`] boots a whole cluster (real sockets, real
//! WAL shipping) inside one process for tests and the CLI quickstart;
//! `tix-bench --bin cluster` runs the multi-process version, including
//! the kill -9 durability drill.

pub mod client;
pub mod coordinator;
pub mod json;
pub mod local;
pub mod merge;
pub mod router;
pub mod topology;

pub use coordinator::{Coordinator, CoordinatorConfig};
pub use json::{Json, JsonError};
pub use local::{LocalCluster, LocalShard};
pub use merge::{Hit, PhraseHit, ShardPhrase, ShardSearch};
pub use router::shard_of;
pub use topology::{ShardTopology, Topology, TopologyError, TOPOLOGY_FILE};
