//! A minimal JSON reader for node-to-node payloads.
//!
//! The cluster tier consumes JSON produced exclusively by this
//! workspace's own servers (shard `/cluster/*` responses, `/health`,
//! `/metrics`), so this parser covers exactly the JSON those renderers
//! emit — objects, arrays, strings with the renderer's escape set,
//! numbers, booleans, null. Two deliberate choices:
//!
//! * **Numbers keep their raw text.** Scores travel as `f64` bit
//!   patterns (`score_bits`, full 64-bit integers) which an `f64`-based
//!   number type would silently round; merging and re-rendering must be
//!   lossless, so [`Json::Num`] stores the verbatim token and callers
//!   pick `u64` or `f64` at the use site.
//! * **Objects preserve insertion order** (a `Vec` of pairs, not a map),
//!   so re-rendering a merged document keeps the upstream field order —
//!   deterministic output for tests and humans alike.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token (see module docs).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what was wrong and the byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What the parser expected or found.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse one JSON document (trailing whitespace allowed, trailing
    /// garbage is an error).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err("trailing characters after document", pos));
        }
        Ok(value)
    }

    /// Object field lookup (None on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (empty slice for non-arrays).
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    /// The string value, if this is a string.
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if it parses exactly.
    pub fn u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Render back to JSON text. Numbers re-emit their raw token, so
    /// `parse(s).render() == s` for canonically-rendered inputs (modulo
    /// insignificant whitespace, which our renderers never emit).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => out.push_str(&tix_server::render::json_string(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&tix_server::render::json_string(k));
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn err(message: &str, offset: usize) -> JsonError {
    JsonError {
        message: message.to_string(),
        offset,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(_) => Err(err("unexpected character", *pos)),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err("bad literal", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let raw =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err("number is not UTF-8", start))?;
    if raw.parse::<f64>().is_err() {
        return Err(err("malformed number", start));
    }
    Ok(Json::Num(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    // Opening quote checked by the caller.
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("bad \\u escape", *pos))?;
                        // Our renderers only \u-escape control characters
                        // (< 0x20), so surrogate pairs never occur; map
                        // unpaired surrogates to U+FFFD rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences arrive
                // pre-validated: the input is a &str).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err("string is not UTF-8", *pos))?;
                let c = rest.chars().next().ok_or_else(|| err("empty char", *pos))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err("expected object key", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err("expected ':'", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_server_shapes() {
        let doc = r#"{"status":"ok","role":"primary","docs":3,"applied_lsn":18446744073709551615,"latency":{"count":2,"buckets":[0,1,1]},"tags":["a","b"],"none":null,"flag":true}"#;
        let parsed = Json::parse(doc).unwrap();
        assert_eq!(parsed.render(), doc);
        assert_eq!(parsed.get("docs").unwrap().u64(), Some(3));
        // Full u64 range survives (an f64 parser would round this).
        assert_eq!(parsed.get("applied_lsn").unwrap().u64(), Some(u64::MAX));
        assert_eq!(parsed.get("status").unwrap().str(), Some("ok"));
        assert_eq!(
            parsed.get("latency").unwrap().get("count").unwrap().u64(),
            Some(2)
        );
        assert_eq!(parsed.get("tags").unwrap().items().len(), 2);
    }

    #[test]
    fn strings_unescape_and_reescape() {
        let doc = "{\"text\":\"a\\\"b\\\\c\\nd\\u0001\"}";
        let parsed = Json::parse(doc).unwrap();
        assert_eq!(parsed.get("text").unwrap().str(), Some("a\"b\\c\nd\u{1}"));
        assert_eq!(parsed.render(), doc);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("--3").is_err());
    }

    #[test]
    fn floats_keep_raw_text() {
        let parsed = Json::parse("[1.5,2.25e-3,-0.0]").unwrap();
        assert_eq!(parsed.render(), "[1.5,2.25e-3,-0.0]");
        let v = parsed.items()[0].f64().unwrap();
        assert!((v - 1.5).abs() < 1e-12);
    }
}
