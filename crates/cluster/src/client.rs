//! Typed node-to-node calls: thin wrappers over the server crate's
//! blocking HTTP client, plus the percent-encoding needed to rebuild a
//! query string from decoded parameters.

use std::io;
use std::time::Duration;

use crate::json::Json;

/// A response from another node: status, raw body, and the body parsed
/// as JSON when it is JSON.
#[derive(Debug)]
pub struct NodeResponse {
    /// HTTP status code.
    pub status: u16,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl NodeResponse {
    /// The body as UTF-8 (lossy — node bodies are our own JSON).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The body parsed as JSON, if it parses.
    pub fn json(&self) -> Option<Json> {
        Json::parse(&self.text()).ok()
    }
}

/// Issue one request to `addr` and read the full response.
pub fn request(
    addr: &str,
    method: &str,
    path_and_query: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<NodeResponse> {
    let (status, body) =
        tix_server::http::client_request(addr, method, path_and_query, body, timeout)?;
    Ok(NodeResponse { status, body })
}

/// `GET` shorthand.
pub fn get(addr: &str, path_and_query: &str, timeout: Duration) -> io::Result<NodeResponse> {
    request(addr, "GET", path_and_query, &[], timeout)
}

/// Percent-encode one query-string component (strict: everything but
/// unreserved characters is escaped, so values decoded by
/// `tix_server::http` round-trip exactly — including `+`, `&`, `=` and
/// spaces inside document names or query terms).
pub fn encode_component(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for byte in value.bytes() {
        match byte {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(byte as char)
            }
            _ => out.push_str(&format!("%{byte:02X}")),
        }
    }
    out
}

/// Rebuild a query string (`a=1&b=two%20words`) from decoded pairs.
pub fn encode_query(params: &[(&str, &str)]) -> String {
    params
        .iter()
        .map(|(k, v)| format!("{}={}", encode_component(k), encode_component(v)))
        .collect::<Vec<_>>()
        .join("&")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_roundtrips_through_the_server_decoder() {
        // The server decodes `+` as space in query strings; strict
        // encoding never emits a bare `+`, so tricky names survive.
        for raw in ["a b", "a+b", "x&y=z", "ünïcode.xml", "100%"] {
            let encoded = encode_component(raw);
            assert!(
                encoded
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric()
                        || matches!(b, b'-' | b'_' | b'.' | b'~' | b'%')),
                "{encoded}"
            );
        }
        assert_eq!(
            encode_query(&[("q", "rust xml"), ("k", "5")]),
            "q=rust%20xml&k=5"
        );
    }
}
