//! Scatter-gather merging with the §4.2 bound as the correctness
//! predicate.
//!
//! Each shard answers `/cluster/search` with its **top-k including
//! ties** plus an *exclusive* upper bound on every score it withheld
//! (`bound_bits`, absent when nothing was withheld). Merging is then
//! provably exact: the global top-k can contain at most `k` hits from
//! any one shard, every candidate tied with a shard's k-th is present
//! (ties are never split), and the §4.2 condition — global k-th score ≥
//! every truncated shard's bound — certifies that no withheld hit could
//! have displaced a kept one. The condition is asserted through
//! [`tix_invariants::assert_scatter_merge_bound`] under
//! `check-invariants` on every merge the coordinator performs.
//!
//! Hits are addressed by **document name + node index**, never by
//! `DocId`: ids are an artifact of per-shard load order and differ
//! between a sharded layout and a single node over the union corpus,
//! while `(name, node_idx)` identifies the same element in both.
//! Scores travel as raw `f64` bits (`score_bits`), so the merged body is
//! byte-identical to what a single node over the union corpus produces
//! — the property the differential suite checks.
//!
//! Canonical order (total, layout-independent):
//! score descending (`f64::total_cmp`), then name ascending, then node
//! index ascending.

use std::cmp::Ordering;

use tix::exec::pick::PickParams;
use tix::Database;
use tix_server::render;

use crate::json::Json;

/// One merged search hit, addressed by `(name, node_idx)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Document name (unique across the cluster — the router's key).
    pub name: String,
    /// Node index within the document (parse-order stable).
    pub node_idx: u32,
    /// The score's raw `f64` bits — exact across the wire.
    pub score_bits: u64,
    /// Element tag name, if the node is an element.
    pub tag: Option<String>,
    /// Text snippet (first [`render::SNIPPET_CHARS`] chars).
    pub text: String,
}

impl Hit {
    /// The score as a float.
    pub fn score(&self) -> f64 {
        f64::from_bits(self.score_bits)
    }
}

/// One merged phrase match.
#[derive(Debug, Clone, PartialEq)]
pub struct PhraseHit {
    /// Document name.
    pub name: String,
    /// Node index within the document.
    pub node_idx: u32,
    /// Occurrence count as raw `f64` bits.
    pub occ_bits: u64,
}

impl PhraseHit {
    /// The occurrence count as a float.
    pub fn occurrences(&self) -> f64 {
        f64::from_bits(self.occ_bits)
    }
}

/// A parsed per-shard `/cluster/search` response.
#[derive(Debug, Clone)]
pub struct ShardSearch {
    /// LSN the shard had applied when it answered.
    pub applied_lsn: u64,
    /// Exclusive bound on withheld scores (absent: nothing withheld).
    pub bound_bits: Option<u64>,
    /// The shard's top-k-with-ties.
    pub hits: Vec<Hit>,
}

/// A parsed per-shard `/cluster/phrase` response.
#[derive(Debug, Clone)]
pub struct ShardPhrase {
    /// LSN the shard had applied when it answered.
    pub applied_lsn: u64,
    /// Every phrase match on the shard.
    pub hits: Vec<PhraseHit>,
}

/// Parse a shard's `/cluster/search` body. `None` on any shape mismatch
/// (the coordinator treats that shard attempt as failed).
pub fn parse_shard_search(body: &str) -> Option<ShardSearch> {
    let doc = Json::parse(body).ok()?;
    let applied_lsn = doc.get("applied_lsn")?.u64()?;
    let bound_bits = match doc.get("bound_bits")? {
        Json::Null => None,
        other => Some(other.u64()?),
    };
    let mut hits = Vec::new();
    for item in doc.get("results")?.items() {
        hits.push(Hit {
            name: item.get("name")?.str()?.to_string(),
            node_idx: u32::try_from(item.get("node_idx")?.u64()?).ok()?,
            score_bits: item.get("score_bits")?.u64()?,
            tag: match item.get("tag")? {
                Json::Null => None,
                other => Some(other.str()?.to_string()),
            },
            text: item.get("text")?.str()?.to_string(),
        });
    }
    Some(ShardSearch {
        applied_lsn,
        bound_bits,
        hits,
    })
}

/// Parse a shard's `/cluster/phrase` body.
pub fn parse_shard_phrase(body: &str) -> Option<ShardPhrase> {
    let doc = Json::parse(body).ok()?;
    let applied_lsn = doc.get("applied_lsn")?.u64()?;
    let mut hits = Vec::new();
    for item in doc.get("results")?.items() {
        hits.push(PhraseHit {
            name: item.get("name")?.str()?.to_string(),
            node_idx: u32::try_from(item.get("node_idx")?.u64()?).ok()?,
            occ_bits: item.get("occ_bits")?.u64()?,
        });
    }
    Some(ShardPhrase { applied_lsn, hits })
}

/// The canonical hit order: score descending (total order over `f64`),
/// then document name, then node index.
pub fn canonical_cmp(a: &Hit, b: &Hit) -> Ordering {
    b.score()
        .total_cmp(&a.score())
        .then_with(|| a.name.cmp(&b.name))
        .then_with(|| a.node_idx.cmp(&b.node_idx))
}

fn canonical_phrase_cmp(a: &PhraseHit, b: &PhraseHit) -> Ordering {
    b.occurrences()
        .total_cmp(&a.occurrences())
        .then_with(|| a.name.cmp(&b.name))
        .then_with(|| a.node_idx.cmp(&b.node_idx))
}

/// Merge per-shard top-k-with-ties responses into the global top-k in
/// canonical order, verifying the §4.2 merge-bound condition (under
/// `check-invariants`): the global k-th kept score must be ≥ every
/// truncated shard's exclusive bound, which proves no withheld score
/// could enter the top-k.
pub fn merge_search(shards: &[ShardSearch], k: usize) -> Vec<Hit> {
    let k = k.max(1);
    let mut all: Vec<Hit> = shards.iter().flat_map(|s| s.hits.iter().cloned()).collect();
    all.sort_by(canonical_cmp);
    all.truncate(k);
    tix_invariants::check! {
        if all.len() == k {
            if let Some(kth) = all.last() {
                tix_invariants::assert_scatter_merge_bound(
                    kth.score(),
                    shards
                        .iter()
                        .map(|s| s.bound_bits.map(f64::from_bits)),
                );
            }
        }
        // Fewer than k kept globally: no shard may have truncated (a
        // shard only truncates past k local hits, all of which merged).
        if all.len() < k {
            tix_invariants::assert_scatter_merge_bound(
                f64::INFINITY,
                shards.iter().map(|s| s.bound_bits.map(f64::from_bits)),
            );
        }
    }
    all
}

/// Merge per-shard phrase responses: phrase results are exhaustive per
/// shard (no truncation, no bound), so the merge is a union in
/// canonical order.
pub fn merge_phrase(shards: &[ShardPhrase]) -> Vec<PhraseHit> {
    let mut all: Vec<PhraseHit> = shards.iter().flat_map(|s| s.hits.iter().cloned()).collect();
    all.sort_by(canonical_phrase_cmp);
    all
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Render the coordinator's `/search` body from merged hits. The same
/// renderer backs [`expected_search_body`], so "coordinator output is
/// byte-identical to a single node over the union corpus" is checked at
/// the bytes level by the differential suite.
pub fn render_search_body(k: usize, hits: &[Hit]) -> String {
    let items: Vec<String> = hits
        .iter()
        .map(|h| {
            format!(
                "{{\"name\":{},\"node_idx\":{},\"score\":{},\"score_bits\":{},\"tag\":{},\"text\":{}}}",
                render::json_string(&h.name),
                h.node_idx,
                json_f64(h.score()),
                h.score_bits,
                h.tag
                    .as_deref()
                    .map(render::json_string)
                    .unwrap_or_else(|| "null".to_string()),
                render::json_string(&h.text)
            )
        })
        .collect();
    format!(
        "{{\"k\":{k},\"count\":{},\"results\":[{}]}}",
        hits.len(),
        items.join(",")
    )
}

/// Render the coordinator's `/phrase` body from merged matches.
pub fn render_phrase_body(hits: &[PhraseHit]) -> String {
    let items: Vec<String> = hits
        .iter()
        .map(|h| {
            format!(
                "{{\"name\":{},\"node_idx\":{},\"occurrences\":{},\"occ_bits\":{}}}",
                render::json_string(&h.name),
                h.node_idx,
                json_f64(h.occurrences()),
                h.occ_bits
            )
        })
        .collect();
    format!(
        "{{\"count\":{},\"results\":[{}]}}",
        hits.len(),
        items.join(",")
    )
}

/// Convert one of a database's scored nodes into a [`Hit`] — shared by
/// the expected-body helpers and tests.
fn hit_of(db: &Database, s: &tix::exec::ScoredNode) -> Hit {
    let store = db.store();
    Hit {
        name: store.doc(s.node.doc).name().to_string(),
        node_idx: s.node.node.0,
        score_bits: s.score.to_bits(),
        tag: store.tag_name(s.node).map(str::to_string),
        text: store
            .text_content(s.node)
            .chars()
            .take(render::SNIPPET_CHARS)
            .collect(),
    }
}

/// The body a coordinator **must** produce for `/search` over a corpus,
/// computed from a single-node [`Database`] holding the union of every
/// shard. The full ranking is re-sorted into canonical order before
/// truncation, so the expectation is independent of load order.
pub fn expected_search_body(db: &Database, terms: &[&str], pick: PickParams, k: usize) -> String {
    let k = k.max(1);
    let all = db.search(terms, pick, usize::MAX);
    let mut hits: Vec<Hit> = all.iter().map(|s| hit_of(db, s)).collect();
    hits.sort_by(canonical_cmp);
    hits.truncate(k);
    render_search_body(k, &hits)
}

/// The body a coordinator must produce for `/phrase` over a corpus,
/// from a single-node union database.
pub fn expected_phrase_body(db: &Database, terms: &[&str]) -> String {
    let matches = db.find_phrase(terms);
    let mut hits: Vec<PhraseHit> = matches
        .iter()
        .map(|m| PhraseHit {
            name: db.store().doc(m.node.doc).name().to_string(),
            node_idx: m.node.node.0,
            occ_bits: m.score.to_bits(),
        })
        .collect();
    hits.sort_by(canonical_phrase_cmp);
    render_phrase_body(&hits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(name: &str, node_idx: u32, score: f64) -> Hit {
        Hit {
            name: name.to_string(),
            node_idx,
            score_bits: score.to_bits(),
            tag: Some("p".to_string()),
            text: "t".to_string(),
        }
    }

    fn shard(bound: Option<f64>, hits: Vec<Hit>) -> ShardSearch {
        ShardSearch {
            applied_lsn: 0,
            bound_bits: bound.map(f64::to_bits),
            hits,
        }
    }

    #[test]
    fn merge_is_canonical_and_respects_k() {
        let merged = merge_search(
            &[
                shard(Some(1.0), vec![hit("b", 1, 3.0), hit("a", 2, 2.0)]),
                shard(None, vec![hit("a", 1, 3.0), hit("c", 7, 1.5)]),
            ],
            3,
        );
        // Ties on 3.0 break by name; k truncates the rest.
        assert_eq!(
            merged
                .iter()
                .map(|h| (h.name.as_str(), h.node_idx))
                .collect::<Vec<_>>(),
            vec![("a", 1), ("b", 1), ("a", 2)]
        );
    }

    #[test]
    fn bound_equality_is_exact() {
        // Global 3rd score == a truncated shard's bound: allowed (bounds
        // are exclusive on the withheld side).
        let merged = merge_search(
            &[
                shard(Some(2.0), vec![hit("a", 1, 4.0), hit("a", 2, 2.0)]),
                shard(None, vec![hit("b", 1, 2.0)]),
            ],
            3,
        );
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.last().unwrap().score(), 2.0);
    }

    #[test]
    #[should_panic(expected = "scatter-merge-bound")]
    fn violated_bound_panics_under_checks() {
        if !tix_invariants::ACTIVE {
            panic!("scatter-merge-bound (checks compiled out; satisfy the harness)");
        }
        // The shard claims it withheld scores up to 5.0 — above the
        // global 1st (3.0): the merge cannot be exact.
        merge_search(&[shard(Some(5.0), vec![hit("a", 1, 3.0)])], 1);
    }

    #[test]
    fn shard_body_parses_back() {
        let body = "{\"generation\":3,\"applied_lsn\":9,\"count\":1,\"bound_bits\":null,\"results\":[{\"name\":\"d.xml\",\"node_idx\":4,\"score_bits\":4611686018427387904,\"tag\":null,\"text\":\"snippet\"}]}";
        let parsed = parse_shard_search(body).unwrap();
        assert_eq!(parsed.applied_lsn, 9);
        assert_eq!(parsed.bound_bits, None);
        assert_eq!(parsed.hits.len(), 1);
        assert_eq!(parsed.hits[0].score(), 2.0);
        assert_eq!(parsed.hits[0].tag, None);
        assert!(parse_shard_search("{\"nope\":1}").is_none());
    }

    #[test]
    fn phrase_merge_orders_by_occurrences_then_name() {
        let a = ShardPhrase {
            applied_lsn: 0,
            hits: vec![PhraseHit {
                name: "b".into(),
                node_idx: 0,
                occ_bits: 1f64.to_bits(),
            }],
        };
        let b = ShardPhrase {
            applied_lsn: 0,
            hits: vec![
                PhraseHit {
                    name: "a".into(),
                    node_idx: 3,
                    occ_bits: 2f64.to_bits(),
                },
                PhraseHit {
                    name: "a".into(),
                    node_idx: 1,
                    occ_bits: 1f64.to_bits(),
                },
            ],
        };
        let merged = merge_phrase(&[a, b]);
        assert_eq!(
            merged
                .iter()
                .map(|h| (h.name.as_str(), h.node_idx))
                .collect::<Vec<_>>(),
            vec![("a", 3), ("a", 1), ("b", 0)]
        );
    }

    #[test]
    fn expected_body_matches_hand_merge() {
        let mut db = Database::new();
        db.load("a.xml", "<a><p>rust xml</p><p>rust</p></a>")
            .unwrap();
        db.load("b.xml", "<b><p>rust database</p></b>").unwrap();
        db.build_index();
        let pick = PickParams::paper();
        let body = expected_search_body(&db, &["rust"], pick, 2);
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("k").unwrap().u64(), Some(2));
        assert_eq!(
            parsed.get("count").unwrap().u64().unwrap() as usize,
            parsed.get("results").unwrap().items().len()
        );
    }
}
