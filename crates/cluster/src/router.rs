//! Deterministic document→shard routing.
//!
//! Placement is a pure function of the document **name** — the one
//! property every request that touches a document carries (ingest,
//! removal, `document("…")` in a query). Hashing the name with the same
//! CRC-32 the storage formats already use means any node, client, or
//! test can compute a document's home shard with no directory service
//! and no state: the routing table IS the function.

/// The shard (0-based) that owns the document named `name` in an
/// `shards`-way cluster. `shards == 0` is treated as 1 (everything on
/// shard 0) so a degenerate topology can never panic the router.
pub fn shard_of(name: &str, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    tix_invariants::crc32(name.as_bytes()) as usize % shards
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 4, 8] {
            for i in 0..200 {
                let name = format!("doc-{i}.xml");
                let s = shard_of(&name, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(&name, shards), "same name, same shard");
            }
        }
    }

    #[test]
    fn zero_shards_degenerates_to_one() {
        assert_eq!(shard_of("a.xml", 0), 0);
        assert_eq!(shard_of("a.xml", 1), 0);
    }

    #[test]
    fn spread_is_not_degenerate() {
        // 200 distinct names over 4 shards: every shard gets something.
        let mut seen = [false; 4];
        for i in 0..200 {
            seen[shard_of(&format!("doc-{i}.xml"), 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all shards populated: {seen:?}");
    }
}
