//! The scatter-gather coordinator: one HTTP front door over a sharded,
//! replicated TIX cluster.
//!
//! * **Reads** (`/search`, `/phrase`) fan out to every shard's
//!   `/cluster/*` endpoint, preferring caught-up replicas (round-robin,
//!   gated by the shard's acked-LSN watermark via `min_lsn`) and
//!   falling back to the primary; the per-shard top-k-with-ties
//!   responses are merged under the §4.2 bound ([`crate::merge`]).
//! * **Writes** (`POST /documents`, `DELETE /documents/{name}`) route
//!   to the owning shard's primary by the deterministic name hash
//!   ([`crate::router`]); the acked LSN advances that shard's read
//!   watermark, so a read issued after a write through this coordinator
//!   never observes a replica that has not applied the write.
//! * **`/query`** routes by the parsed `For`-clause document names:
//!   every named document hashes to a shard, and a query whose
//!   documents live on one shard is forwarded verbatim (responses pass
//!   through byte-for-byte). A join across shards answers `501`.
//! * **`/metrics`** merges every node's registry — counters summed,
//!   log₂ latency histograms merged bucket-wise (exact, unlike
//!   averaging quantiles) with mean and percentiles recomputed — plus a
//!   per-node breakdown and the coordinator's own fan-out counters.
//! * **`/health`** (alias `/status`) fans `/health` out to every node
//!   and reports per-node role, generation, and applied LSN.
//!
//! The front door reuses the serving tier's admission discipline: a
//! bounded queue ahead of a fixed worker pool, saturation answered with
//! `503` + `Retry-After` at the accept loop.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tix_server::http::{self, Limits, Request, Response};
use tix_server::metrics::{LatencyHistogram, BUCKETS};
use tix_server::queue::{BoundedQueue, PushError};
use tix_server::render;

use crate::client;
use crate::json::Json;
use crate::merge;
use crate::topology::Topology;

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Bind address; port 0 for ephemeral.
    pub addr: String,
    /// Worker-pool size (minimum 1).
    pub workers: usize,
    /// Admission-queue capacity (minimum 1); a full queue answers 503.
    pub queue_capacity: usize,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// Per-node timeout for fan-out calls.
    pub fanout_timeout_ms: u64,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            max_body: 1024 * 1024,
            fanout_timeout_ms: 5_000,
        }
    }
}

/// The coordinator's own counters (shard/replica counters live on the
/// nodes and are merged into `/metrics` at read time).
#[derive(Debug)]
struct CoMetrics {
    requests_total: AtomicU64,
    responses_by_class: [AtomicU64; 5],
    rejected_saturated: AtomicU64,
    /// Individual node calls issued during fan-outs.
    fanout_requests: AtomicU64,
    /// Node calls that failed at the transport level.
    fanout_errors: AtomicU64,
    /// 403s received from behind-watermark replicas (each one routed
    /// around, not surfaced).
    stale_retries: AtomicU64,
    /// Reads that fell back past at least one replica.
    replica_fallbacks: AtomicU64,
    search: AtomicU64,
    phrase: AtomicU64,
    query: AtomicU64,
    documents: AtomicU64,
    admin: AtomicU64,
    health: AtomicU64,
    metrics: AtomicU64,
    other: AtomicU64,
    latency: LatencyHistogram,
    queue_wait: LatencyHistogram,
    queue_depth: AtomicUsize,
    workers_busy: AtomicUsize,
    workers_total: usize,
}

impl CoMetrics {
    fn new(workers_total: usize) -> Self {
        CoMetrics {
            requests_total: AtomicU64::new(0),
            responses_by_class: Default::default(),
            rejected_saturated: AtomicU64::new(0),
            fanout_requests: AtomicU64::new(0),
            fanout_errors: AtomicU64::new(0),
            stale_retries: AtomicU64::new(0),
            replica_fallbacks: AtomicU64::new(0),
            search: AtomicU64::new(0),
            phrase: AtomicU64::new(0),
            query: AtomicU64::new(0),
            documents: AtomicU64::new(0),
            admin: AtomicU64::new(0),
            health: AtomicU64::new(0),
            metrics: AtomicU64::new(0),
            other: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
            queue_wait: LatencyHistogram::default(),
            queue_depth: AtomicUsize::new(0),
            workers_busy: AtomicUsize::new(0),
            workers_total,
        }
    }

    fn record_status(&self, status: u16) {
        let class = usize::from(status / 100).saturating_sub(1);
        if let Some(slot) = self.responses_by_class.get(class) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn to_json(&self) -> String {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        format!(
            concat!(
                "{{\"requests_total\":{},",
                "\"responses\":{{\"1xx\":{},\"2xx\":{},\"3xx\":{},\"4xx\":{},\"5xx\":{}}},",
                "\"rejected_saturated\":{},",
                "\"fanout\":{{\"requests\":{},\"errors\":{},\"stale_retries\":{},\"replica_fallbacks\":{}}},",
                "\"endpoints\":{{\"search\":{},\"phrase\":{},\"query\":{},\"documents\":{},\"admin\":{},\"health\":{},\"metrics\":{},\"other\":{}}},",
                "\"queue\":{{\"depth\":{},\"wait\":{}}},",
                "\"workers\":{{\"busy\":{},\"total\":{}}},",
                "\"latency\":{}}}"
            ),
            load(&self.requests_total),
            load(&self.responses_by_class[0]),
            load(&self.responses_by_class[1]),
            load(&self.responses_by_class[2]),
            load(&self.responses_by_class[3]),
            load(&self.responses_by_class[4]),
            load(&self.rejected_saturated),
            load(&self.fanout_requests),
            load(&self.fanout_errors),
            load(&self.stale_retries),
            load(&self.replica_fallbacks),
            load(&self.search),
            load(&self.phrase),
            load(&self.query),
            load(&self.documents),
            load(&self.admin),
            load(&self.health),
            load(&self.metrics),
            load(&self.other),
            self.queue_depth.load(Ordering::Relaxed),
            self.queue_wait.to_json(),
            self.workers_busy.load(Ordering::Relaxed),
            self.workers_total,
            self.latency.to_json(),
        )
    }
}

struct Job {
    stream: TcpStream,
    admitted: Instant,
}

struct Shared {
    topology: Topology,
    /// Per-shard acked-LSN watermark: the highest LSN a write through
    /// this coordinator was acknowledged at (monotone, `fetch_max`).
    watermarks: Vec<AtomicU64>,
    /// Per-shard round-robin cursor over replicas.
    rr: Vec<AtomicU64>,
    queue: BoundedQueue<Job>,
    metrics: CoMetrics,
    limits: Limits,
    timeout: Duration,
    shutdown: AtomicBool,
}

/// A running coordinator.
pub struct Coordinator {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl Coordinator {
    /// Bind, seed the read watermarks from each primary's current
    /// applied LSN (best-effort), and start serving.
    pub fn start(topology: Topology, config: CoordinatorConfig) -> std::io::Result<Coordinator> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let timeout = Duration::from_millis(config.fanout_timeout_ms.max(1));
        let watermarks: Vec<AtomicU64> = topology
            .shards
            .iter()
            .map(|shard| {
                // Seed from the primary so reads routed to replicas are
                // gated on everything already acknowledged before this
                // coordinator existed. Unreachable primary: start at 0.
                let seeded = client::get(&shard.primary, "/health", timeout)
                    .ok()
                    .and_then(|r| r.json())
                    .and_then(|j| j.get("applied_lsn").and_then(Json::u64))
                    .unwrap_or(0);
                AtomicU64::new(seeded)
            })
            .collect();
        let shared = Arc::new(Shared {
            rr: topology.shards.iter().map(|_| AtomicU64::new(0)).collect(),
            watermarks,
            topology,
            queue: BoundedQueue::new(config.queue_capacity),
            metrics: CoMetrics::new(workers),
            limits: Limits {
                max_body: config.max_body,
            },
            timeout,
            shutdown: AtomicBool::new(false),
        });
        let mut worker_threads = Vec::with_capacity(workers);
        for _ in 0..workers {
            let shared = Arc::clone(&shared);
            worker_threads.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        let accept_shared = Arc::clone(&shared);
        let listener_thread = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(Coordinator {
            addr,
            shared,
            listener_thread: Some(listener_thread),
            worker_threads,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The coordinator's own metrics document (the `"coordinator"`
    /// section of `/metrics`), without a request.
    pub fn metrics_json(&self) -> String {
        self.shared.metrics.to_json()
    }

    /// The acked-LSN watermark currently gating reads on `shard`.
    pub fn watermark(&self, shard: usize) -> u64 {
        self.shared
            .watermarks
            .get(shard)
            .map(|w| w.load(Ordering::SeqCst))
            .unwrap_or(0)
    }

    /// Graceful shutdown: refuse new connections, drain, join.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(handle) = self.listener_thread.take() {
            let _ = handle.join();
        }
        self.shared.queue.close();
        for handle in self.worker_threads.drain(..) {
            let _ = handle.join();
        }
    }

    /// Serve until the process exits (the CLI's main loop).
    pub fn join(mut self) {
        if let Some(handle) = self.listener_thread.take() {
            let _ = handle.join();
        }
        self.shared.queue.close();
        for handle in self.worker_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        if shared.shutdown.load(Ordering::SeqCst) {
            refuse(shared, stream, "coordinator is shutting down", false);
            break;
        }
        shared
            .metrics
            .requests_total
            .fetch_add(1, Ordering::Relaxed);
        let job = Job {
            stream,
            admitted: Instant::now(),
        };
        match shared.queue.try_push(job) {
            Ok(depth) => shared.metrics.queue_depth.store(depth, Ordering::Relaxed),
            Err(PushError::Full(job)) => {
                shared
                    .metrics
                    .rejected_saturated
                    .fetch_add(1, Ordering::Relaxed);
                refuse(shared, job.stream, "admission queue full", true);
            }
            Err(PushError::Closed(job)) => {
                refuse(shared, job.stream, "coordinator is shutting down", false);
            }
        }
    }
}

fn refuse(shared: &Shared, mut stream: TcpStream, message: &str, retryable: bool) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut response = Response::error(503, message);
    if retryable {
        response = response.with_header("Retry-After", "1".to_string());
    }
    shared.metrics.record_status(503);
    let _ = response.write_to(&mut stream);
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        shared
            .metrics
            .queue_depth
            .store(shared.queue.len(), Ordering::Relaxed);
        shared.metrics.queue_wait.record(job.admitted.elapsed());
        shared.metrics.workers_busy.fetch_add(1, Ordering::Relaxed);
        // Defense in depth, same as the shard server: one panicking
        // request must not take a worker down.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(shared, job);
        }));
        if result.is_err() {
            shared.metrics.record_status(500);
        }
        shared.metrics.workers_busy.fetch_sub(1, Ordering::Relaxed);
    }
}

fn handle_connection(shared: &Shared, job: Job) {
    let Job { stream, admitted } = job;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let Ok(reader_half) = stream.try_clone() else {
        return;
    };
    let mut reader = std::io::BufReader::new(reader_half);
    let mut stream = stream;
    let response = match http::read_request(&mut reader, &shared.limits) {
        Ok(request) => respond(shared, &request),
        Err(e) => {
            let (status, _) = e.status();
            Response::error(status, &e.to_string())
        }
    };
    shared.metrics.record_status(response.status);
    shared.metrics.latency.record(admitted.elapsed());
    let _ = response.write_to(&mut stream);
}

fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

fn respond(shared: &Shared, request: &Request) -> Response {
    let m = &shared.metrics;
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/search") => {
            bump(&m.search);
            handle_search(shared, request)
        }
        ("GET", "/phrase") => {
            bump(&m.phrase);
            handle_phrase(shared, request)
        }
        ("POST", "/query") => {
            bump(&m.query);
            handle_query(shared, request)
        }
        ("POST", "/documents") => {
            bump(&m.documents);
            handle_insert(shared, request)
        }
        ("DELETE", path) if path.starts_with("/documents/") => {
            bump(&m.documents);
            let name = path.strip_prefix("/documents/").unwrap_or("");
            handle_remove(shared, name)
        }
        ("POST", "/admin/checkpoint") => {
            bump(&m.admin);
            handle_checkpoint(shared)
        }
        ("GET", "/health" | "/status") => {
            bump(&m.health);
            handle_health(shared)
        }
        ("GET", "/metrics") => {
            bump(&m.metrics);
            handle_metrics(shared)
        }
        (_, "/search" | "/phrase" | "/health" | "/status" | "/metrics") => {
            bump(&m.other);
            Response::error(405, "method not allowed").with_header("Allow", "GET".to_string())
        }
        (_, "/query" | "/documents" | "/admin/checkpoint") => {
            bump(&m.other);
            Response::error(405, "method not allowed").with_header("Allow", "POST".to_string())
        }
        (_, path) if path.starts_with("/documents/") => {
            bump(&m.other);
            Response::error(405, "method not allowed").with_header("Allow", "DELETE".to_string())
        }
        (_, path) => {
            bump(&m.other);
            Response::error(404, &format!("no such endpoint {path:?}"))
        }
    }
}

/// Forward selected query parameters from the client request onto a
/// shard request, percent-encoded.
fn forward_params(request: &Request, names: &[&str]) -> Vec<(String, String)> {
    names
        .iter()
        .filter_map(|&name| {
            request
                .query_param(name)
                .map(|v| (name.to_string(), v.to_string()))
        })
        .collect()
}

fn query_string(params: &[(String, String)]) -> String {
    let borrowed: Vec<(&str, &str)> = params
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    client::encode_query(&borrowed)
}

/// Issue a **read** to one shard: caught-up replicas first (round-robin
/// from the shard's cursor), primary last. Every attempt carries the
/// shard's acked-LSN watermark as `min_lsn`; a replica that answers 403
/// (behind the watermark) or fails at the transport level is skipped.
/// Statuses other than 403 — including client errors — are returned
/// as-is: they are real answers, not staleness.
fn shard_read(
    shared: &Shared,
    shard: usize,
    method: &str,
    path: &str,
    params: &[(String, String)],
    body: &[u8],
) -> Result<client::NodeResponse, String> {
    let group = match shared.topology.shards.get(shard) {
        Some(group) => group,
        None => return Err(format!("shard {shard} is not in the topology")),
    };
    let watermark = shared.watermarks[shard].load(Ordering::SeqCst);
    let mut with_watermark = params.to_vec();
    with_watermark.push(("min_lsn".to_string(), watermark.to_string()));
    let path_and_query = format!("{path}?{}", query_string(&with_watermark));

    let replica_count = group.replicas.len();
    let start = if replica_count == 0 {
        0
    } else {
        shared.rr[shard].fetch_add(1, Ordering::Relaxed) as usize % replica_count
    };
    let mut candidates: Vec<&str> = Vec::with_capacity(replica_count + 1);
    for i in 0..replica_count {
        candidates.push(group.replicas[(start + i) % replica_count].as_str());
    }
    candidates.push(group.primary.as_str());

    let mut errors = Vec::new();
    for (attempt, addr) in candidates.iter().enumerate() {
        if attempt > 0 {
            shared
                .metrics
                .replica_fallbacks
                .fetch_add(1, Ordering::Relaxed);
        }
        shared
            .metrics
            .fanout_requests
            .fetch_add(1, Ordering::Relaxed);
        match client::request(addr, method, &path_and_query, body, shared.timeout) {
            Ok(response) if response.status == 403 => {
                // Behind the watermark (or refusing reads): route around.
                shared.metrics.stale_retries.fetch_add(1, Ordering::Relaxed);
                errors.push(format!("{addr}: 403 {}", response.text()));
            }
            Ok(response) => return Ok(response),
            Err(e) => {
                shared.metrics.fanout_errors.fetch_add(1, Ordering::Relaxed);
                errors.push(format!("{addr}: {e}"));
            }
        }
    }
    Err(format!(
        "shard {shard}: every node failed [{}]",
        errors.join("; ")
    ))
}

/// Issue a **write** to one shard's primary. On a 2xx ack, advance the
/// shard's read watermark to the acknowledged LSN.
fn shard_write(
    shared: &Shared,
    shard: usize,
    method: &str,
    path_and_query: &str,
    body: &[u8],
) -> Response {
    let group = match shared.topology.shards.get(shard) {
        Some(group) => group,
        None => return Response::error(502, &format!("shard {shard} is not in the topology")),
    };
    shared
        .metrics
        .fanout_requests
        .fetch_add(1, Ordering::Relaxed);
    match client::request(&group.primary, method, path_and_query, body, shared.timeout) {
        Ok(response) => {
            if (200..300).contains(&response.status) {
                if let Some(lsn) = response
                    .json()
                    .and_then(|j| j.get("lsn").and_then(Json::u64))
                {
                    shared.watermarks[shard].fetch_max(lsn, Ordering::SeqCst);
                }
            }
            Response::json(response.status, response.text())
        }
        Err(e) => {
            shared.metrics.fanout_errors.fetch_add(1, Ordering::Relaxed);
            Response::error(
                502,
                &format!("shard {shard} primary {}: {e}", group.primary),
            )
        }
    }
}

/// Fan a read out to every shard in parallel, one thread per shard.
fn scatter_read(
    shared: &Shared,
    path: &str,
    params: &[(String, String)],
) -> Vec<Result<client::NodeResponse, String>> {
    let shard_ids: Vec<usize> = (0..shared.topology.shard_count()).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = shard_ids
            .iter()
            .map(|&shard| scope.spawn(move || shard_read(shared, shard, "GET", path, params, &[])))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("scatter worker panicked".to_string()))
            })
            .collect()
    })
}

fn handle_search(shared: &Shared, request: &Request) -> Response {
    if request.query_param("q").is_none() {
        return Response::error(400, "missing q parameter");
    }
    let k = match request.query_param("k").unwrap_or("10").parse::<usize>() {
        Ok(k) => k.max(1),
        Err(_) => return Response::error(400, "bad k parameter"),
    };
    let mut params = forward_params(request, &["q", "threshold", "fraction", "deadline_ms"]);
    params.push(("k".to_string(), k.to_string()));
    let gathered = scatter_read(shared, "/cluster/search", &params);
    let mut shards = Vec::with_capacity(gathered.len());
    for (shard, result) in gathered.into_iter().enumerate() {
        let response = match result {
            Ok(r) => r,
            Err(e) => return Response::error(502, &e),
        };
        if response.status != 200 {
            // Shards agree on parameter validation; surface the first
            // non-200 verbatim (e.g. a 400 for an empty query).
            return Response::json(response.status, response.text());
        }
        match merge::parse_shard_search(&response.text()) {
            Some(parsed) => shards.push(parsed),
            None => {
                return Response::error(
                    502,
                    &format!("shard {shard}: unparseable /cluster/search response"),
                )
            }
        }
    }
    let merged = merge::merge_search(&shards, k);
    Response::json(200, merge::render_search_body(k, &merged))
}

fn handle_phrase(shared: &Shared, request: &Request) -> Response {
    if request.query_param("q").is_none() {
        return Response::error(400, "missing q parameter");
    }
    let params = forward_params(request, &["q", "deadline_ms"]);
    let gathered = scatter_read(shared, "/cluster/phrase", &params);
    let mut shards = Vec::with_capacity(gathered.len());
    for (shard, result) in gathered.into_iter().enumerate() {
        let response = match result {
            Ok(r) => r,
            Err(e) => return Response::error(502, &e),
        };
        if response.status != 200 {
            return Response::json(response.status, response.text());
        }
        match merge::parse_shard_phrase(&response.text()) {
            Some(parsed) => shards.push(parsed),
            None => {
                return Response::error(
                    502,
                    &format!("shard {shard}: unparseable /cluster/phrase response"),
                )
            }
        }
    }
    let merged = merge::merge_phrase(&shards);
    Response::json(200, merge::render_phrase_body(&merged))
}

/// Route a dialect query by its `For`-clause document names. All the
/// named documents hash to one shard: forward verbatim (the shard's
/// response body passes through untouched, so single-shard queries are
/// byte-identical to a single node holding those documents).
fn handle_query(shared: &Shared, request: &Request) -> Response {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "query body is not UTF-8");
    };
    if text.trim().is_empty() {
        return Response::error(400, "query body is empty");
    }
    let query = match tix::query::parse(text) {
        Ok(query) => query,
        // Same rendering as a shard/single node: QueryError::Parse
        // displays as the ParseError itself.
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let mut shards: Vec<usize> = query
        .fors
        .iter()
        .map(|f| shared.topology.shard_of(&f.path.document))
        .collect();
    shards.sort_unstable();
    shards.dedup();
    let shard = match shards.as_slice() {
        [single] => *single,
        [] => return Response::error(400, "query has no For clause"),
        _ => {
            return Response::error(
                501,
                "cross-shard join: the For clauses name documents on different shards",
            )
        }
    };
    match shard_read(shared, shard, "POST", "/query", &[], &request.body) {
        Ok(response) => Response::json(response.status, response.text()),
        Err(e) => Response::error(502, &e),
    }
}

fn handle_insert(shared: &Shared, request: &Request) -> Response {
    let Some(name) = request.query_param("name") else {
        return Response::error(400, "missing name parameter");
    };
    if name.is_empty() {
        return Response::error(400, "name must not be empty");
    }
    let shard = shared.topology.shard_of(name);
    let path = format!("/documents?name={}", client::encode_component(name));
    shard_write(shared, shard, "POST", &path, &request.body)
}

fn handle_remove(shared: &Shared, name: &str) -> Response {
    if name.is_empty() {
        return Response::error(400, "missing document name in path");
    }
    let shard = shared.topology.shard_of(name);
    let path = format!("/documents/{}", client::encode_component(name));
    shard_write(shared, shard, "DELETE", &path, &[])
}

/// Force a checkpoint on every shard primary.
fn handle_checkpoint(shared: &Shared) -> Response {
    let mut bodies = Vec::new();
    let mut all_ok = true;
    for (shard, group) in shared.topology.shards.iter().enumerate() {
        shared
            .metrics
            .fanout_requests
            .fetch_add(1, Ordering::Relaxed);
        match client::request(
            &group.primary,
            "POST",
            "/admin/checkpoint",
            &[],
            shared.timeout,
        ) {
            Ok(response) if response.status == 200 => bodies.push(response.text()),
            Ok(response) => {
                all_ok = false;
                bodies.push(format!(
                    "{{\"error\":\"shard {shard} answered {}\"}}",
                    response.status
                ));
            }
            Err(e) => {
                shared.metrics.fanout_errors.fetch_add(1, Ordering::Relaxed);
                all_ok = false;
                bodies.push(format!(
                    "{{\"error\":{}}}",
                    render::json_string(&format!("shard {shard}: {e}"))
                ));
            }
        }
    }
    let status = if all_ok { 200 } else { 502 };
    Response::json(status, format!("{{\"shards\":[{}]}}", bodies.join(",")))
}

/// Fan `/health` out to every node: per-node role, generation, applied
/// LSN; overall `"ok"` only when every node answered `"ok"`.
fn handle_health(shared: &Shared) -> Response {
    let mut nodes = Vec::new();
    let mut all_ok = true;
    for (shard, addr, is_primary) in shared.topology.all_nodes() {
        shared
            .metrics
            .fanout_requests
            .fetch_add(1, Ordering::Relaxed);
        let (ok, health) = match client::get(addr, "/health", shared.timeout) {
            Ok(response) if response.status == 200 => match response.json() {
                Some(doc) => {
                    let ok = doc.get("status").and_then(Json::str) == Some("ok");
                    (ok, doc.render())
                }
                None => (false, "null".to_string()),
            },
            Ok(response) => (false, format!("{{\"status_code\":{}}}", response.status)),
            Err(e) => {
                shared.metrics.fanout_errors.fetch_add(1, Ordering::Relaxed);
                (
                    false,
                    format!(
                        "{{\"unreachable\":{}}}",
                        render::json_string(&e.to_string())
                    ),
                )
            }
        };
        all_ok &= ok;
        nodes.push(format!(
            "{{\"shard\":{shard},\"addr\":{},\"expected_role\":\"{}\",\"ok\":{ok},\"watermark\":{},\"health\":{health}}}",
            render::json_string(addr),
            if is_primary { "primary" } else { "follower" },
            shared.watermarks[shard].load(Ordering::SeqCst),
        ));
    }
    Response::json(
        200,
        format!(
            "{{\"status\":{},\"shards\":{},\"nodes\":[{}]}}",
            if all_ok { "\"ok\"" } else { "\"degraded\"" },
            shared.topology.shard_count(),
            nodes.join(",")
        ),
    )
}

/// Merge every node's `/metrics` document with the coordinator's own:
/// `"coordinator"` (local counters), `"cluster"` (the exact bucket-wise
/// merge across nodes), and `"nodes"` (per-node breakdown).
fn handle_metrics(shared: &Shared) -> Response {
    let mut node_docs: Vec<(String, Option<Json>)> = Vec::new();
    for (_, addr, _) in shared.topology.all_nodes() {
        shared
            .metrics
            .fanout_requests
            .fetch_add(1, Ordering::Relaxed);
        let doc = match client::get(addr, "/metrics", shared.timeout) {
            Ok(response) if response.status == 200 => response.json(),
            Ok(_) => None,
            Err(_) => {
                shared.metrics.fanout_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        };
        node_docs.push((addr.to_string(), doc));
    }
    let reachable: Vec<&Json> = node_docs.iter().filter_map(|(_, d)| d.as_ref()).collect();
    let merged = merge_metric_docs(&reachable);
    let nodes: Vec<String> = node_docs
        .iter()
        .map(|(addr, doc)| {
            format!(
                "{{\"addr\":{},\"metrics\":{}}}",
                render::json_string(addr),
                doc.as_ref()
                    .map(Json::render)
                    .unwrap_or_else(|| "null".to_string())
            )
        })
        .collect();
    Response::json(
        200,
        format!(
            "{{\"coordinator\":{},\"cluster\":{},\"nodes\":[{}]}}",
            shared.metrics.to_json(),
            merged.render(),
            nodes.join(",")
        ),
    )
}

/// Merge node metrics documents value-wise: numbers sum (`u64` exactly
/// when every operand is a `u64`), arrays of numbers sum element-wise
/// (the log₂ histogram buckets — exact, unlike merging quantiles),
/// objects merge recursively by key union. After merging, any object
/// carrying `buckets`/`count`/`sum_us` has its `mean_us` and
/// `p50/p95/p99` recomputed from the merged buckets, and
/// `workers.utilization` is recomputed from the summed gauges.
fn merge_metric_docs(docs: &[&Json]) -> Json {
    let mut merged = match docs.first() {
        Some(first) => (*first).clone(),
        None => return Json::Null,
    };
    for doc in &docs[1..] {
        merged = merge_values(&merged, doc);
    }
    fixup_derived(&mut merged);
    merged
}

fn merge_values(a: &Json, b: &Json) -> Json {
    match (a, b) {
        (Json::Num(x), Json::Num(y)) => match (a.u64(), b.u64()) {
            (Some(m), Some(n)) => Json::Num(m.saturating_add(n).to_string()),
            _ => {
                let sum = x.parse::<f64>().unwrap_or(0.0) + y.parse::<f64>().unwrap_or(0.0);
                Json::Num(format!("{sum}"))
            }
        },
        (Json::Arr(xs), Json::Arr(ys)) if xs.len() == ys.len() => {
            Json::Arr(xs.iter().zip(ys).map(|(x, y)| merge_values(x, y)).collect())
        }
        (Json::Obj(pairs), Json::Obj(other)) => {
            let mut out: Vec<(String, Json)> = Vec::with_capacity(pairs.len());
            for (key, value) in pairs {
                let merged = match other.iter().find(|(k, _)| k == key) {
                    Some((_, theirs)) => merge_values(value, theirs),
                    None => value.clone(),
                };
                out.push((key.clone(), merged));
            }
            for (key, value) in other {
                if !pairs.iter().any(|(k, _)| k == key) {
                    out.push((key.clone(), value.clone()));
                }
            }
            Json::Obj(out)
        }
        // Mismatched shapes or non-numeric scalars: first node wins.
        _ => a.clone(),
    }
}

/// Recompute values that are ratios or quantiles of merged inputs —
/// summing them would be wrong.
fn fixup_derived(value: &mut Json) {
    let Json::Obj(pairs) = value else { return };
    let field = |name: &str| {
        pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
    };
    let count = field("count").and_then(|v| v.u64());
    let sum_us = field("sum_us").and_then(|v| v.u64());
    let buckets: Option<Vec<u64>> =
        field("buckets").map(|b| b.items().iter().filter_map(Json::u64).collect());
    let busy = field("busy").and_then(|v| v.u64());
    let total = field("total").and_then(|v| v.u64());

    if let (Some(count), Some(sum_us), Some(buckets)) = (count, sum_us, buckets.as_ref()) {
        if buckets.len() == BUCKETS {
            for (key, slot) in pairs.iter_mut() {
                match key.as_str() {
                    "mean_us" => {
                        *slot = Json::Num(sum_us.checked_div(count).unwrap_or(0).to_string())
                    }
                    "p50_us" => *slot = Json::Num(quantile_of(buckets, count, 0.50).to_string()),
                    "p95_us" => *slot = Json::Num(quantile_of(buckets, count, 0.95).to_string()),
                    "p99_us" => *slot = Json::Num(quantile_of(buckets, count, 0.99).to_string()),
                    _ => {}
                }
            }
        }
    }
    if let (Some(busy), Some(total)) = (busy, total) {
        for (key, slot) in pairs.iter_mut() {
            if key == "utilization" {
                let utilization = if total == 0 {
                    0.0
                } else {
                    busy as f64 / total as f64
                };
                *slot = Json::Num(format!("{utilization:.3}"));
            }
        }
    }
    for (_, child) in pairs.iter_mut() {
        fixup_derived(child);
    }
}

/// The same upper-bucket-bound quantile the per-node histogram reports,
/// over merged buckets.
fn quantile_of(buckets: &[u64], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &bucket) in buckets.iter().enumerate() {
        seen += bucket;
        if seen >= rank {
            return 2u64.saturating_pow(u32::try_from(i + 1).unwrap_or(u32::MAX));
        }
    }
    2u64.saturating_pow(buckets.len() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_merge_sums_counters_and_buckets() {
        let a = Json::parse(
            "{\"requests_total\":3,\"latency\":{\"count\":2,\"sum_us\":200,\"mean_us\":100,\"p50_us\":128,\"p95_us\":128,\"p99_us\":128,\"buckets\":[0,0,0,0,0,0,2,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0]}}",
        )
        .unwrap();
        let b = Json::parse(
            "{\"requests_total\":5,\"latency\":{\"count\":1,\"sum_us\":5000,\"mean_us\":5000,\"p50_us\":8192,\"p95_us\":8192,\"p99_us\":8192,\"buckets\":[0,0,0,0,0,0,0,0,0,0,0,0,1,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0]}}",
        )
        .unwrap();
        let merged = merge_metric_docs(&[&a, &b]);
        assert_eq!(merged.get("requests_total").unwrap().u64(), Some(8));
        let latency = merged.get("latency").unwrap();
        assert_eq!(latency.get("count").unwrap().u64(), Some(3));
        assert_eq!(latency.get("sum_us").unwrap().u64(), Some(5200));
        // Mean recomputed from merged sums, not summed: 5200/3 = 1733.
        assert_eq!(latency.get("mean_us").unwrap().u64(), Some(1733));
        // p50 of {2×100µs, 1×5ms} is the 100µs bucket's upper bound.
        assert_eq!(latency.get("p50_us").unwrap().u64(), Some(128));
        // p99 lands in the 5 ms sample's bucket [4096, 8192) → 8192.
        assert_eq!(latency.get("p99_us").unwrap().u64(), Some(8192));
        let buckets = latency.get("buckets").unwrap();
        assert_eq!(buckets.items()[6].u64(), Some(2));
        assert_eq!(buckets.items()[12].u64(), Some(1));
    }

    #[test]
    fn metric_merge_recomputes_utilization() {
        let a =
            Json::parse("{\"workers\":{\"busy\":1,\"total\":4,\"utilization\":0.250}}").unwrap();
        let b =
            Json::parse("{\"workers\":{\"busy\":3,\"total\":4,\"utilization\":0.750}}").unwrap();
        let merged = merge_metric_docs(&[&a, &b]);
        let workers = merged.get("workers").unwrap();
        assert_eq!(workers.get("busy").unwrap().u64(), Some(4));
        assert_eq!(workers.get("total").unwrap().u64(), Some(8));
        assert_eq!(workers.get("utilization").unwrap().f64(), Some(0.5));
    }

    #[test]
    fn metric_merge_of_nothing_is_null() {
        assert_eq!(merge_metric_docs(&[]), Json::Null);
    }
}
