//! An in-process cluster: N shard primaries, M followers each, and a
//! coordinator, all inside one process on ephemeral ports.
//!
//! This is the harness behind the differential proptest, the staleness
//! e2e tests, and the CLI's quickstart path — everything a multi-node
//! deployment has (real sockets, real WAL shipping, real scatter-gather)
//! without process management. The multi-process variant lives in
//! `tix-bench --bin cluster`, which spawns real `tix` processes and
//! kills them with SIGKILL.

use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use tix_server::{Server, ServerConfig};

use crate::client;
use crate::coordinator::{Coordinator, CoordinatorConfig};
use crate::topology::{ShardTopology, Topology};

/// One shard's in-process serving group.
pub struct LocalShard {
    /// The shard primary (accepts writes, serves `/wal`).
    pub primary: Server,
    /// Followers replicating from the primary.
    pub replicas: Vec<Server>,
}

/// A whole cluster in one process.
pub struct LocalCluster {
    topology: Topology,
    shards: Vec<LocalShard>,
    coordinator: Coordinator,
}

/// Server tuning for in-process nodes: small worker pools so a
/// 4-shard × 2-replica cluster does not spawn dozens of threads.
fn node_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 32,
        ..ServerConfig::default()
    }
}

impl LocalCluster {
    /// Boot `shards` primaries with `replicas_per_shard` followers each
    /// under `dir` (`dir/shard-N/primary`, `dir/shard-N/replica-M`),
    /// persist the topology as `cluster.json`, and start a coordinator.
    pub fn start(
        dir: impl AsRef<Path>,
        shards: usize,
        replicas_per_shard: usize,
    ) -> io::Result<LocalCluster> {
        LocalCluster::start_with(dir, shards, replicas_per_shard, node_config())
    }

    /// [`LocalCluster::start`] with explicit per-node server tuning
    /// (the differential suite varies `request_threads` through this).
    pub fn start_with(
        dir: impl AsRef<Path>,
        shards: usize,
        replicas_per_shard: usize,
        node_config: ServerConfig,
    ) -> io::Result<LocalCluster> {
        let dir = dir.as_ref();
        let shards = shards.max(1);
        let mut groups = Vec::with_capacity(shards);
        let mut map = Vec::with_capacity(shards);
        for s in 0..shards {
            let shard_dir = dir.join(format!("shard-{s}"));
            let primary = Server::start_primary(shard_dir.join("primary"), node_config.clone())?;
            let primary_addr = primary.addr().to_string();
            let mut replicas = Vec::with_capacity(replicas_per_shard);
            for r in 0..replicas_per_shard {
                replicas.push(Server::start_follower(
                    shard_dir.join(format!("replica-{r}")),
                    Some(primary_addr.clone()),
                    node_config.clone(),
                )?);
            }
            map.push(ShardTopology {
                primary: primary_addr,
                replicas: replicas.iter().map(|r| r.addr().to_string()).collect(),
            });
            groups.push(LocalShard { primary, replicas });
        }
        let topology = Topology { shards: map };
        topology.save(dir).map_err(io::Error::other)?;
        let coordinator = Coordinator::start(topology.clone(), CoordinatorConfig::default())?;
        Ok(LocalCluster {
            topology,
            shards: groups,
            coordinator,
        })
    }

    /// The coordinator's bound address.
    pub fn coordinator_addr(&self) -> String {
        self.coordinator.addr().to_string()
    }

    /// The coordinator handle.
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// The cluster map.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The in-process serving groups, shard order.
    pub fn shards(&self) -> &[LocalShard] {
        &self.shards
    }

    /// Issue a request against the coordinator. Status + body text.
    pub fn request(
        &self,
        method: &str,
        path_and_query: &str,
        body: &[u8],
    ) -> io::Result<(u16, String)> {
        let response = client::request(
            &self.coordinator_addr(),
            method,
            path_and_query,
            body,
            Duration::from_secs(30),
        )?;
        Ok((response.status, response.text()))
    }

    /// `GET` against the coordinator.
    pub fn get(&self, path_and_query: &str) -> io::Result<(u16, String)> {
        self.request("GET", path_and_query, &[])
    }

    /// Ingest a document through the coordinator.
    pub fn insert(&self, name: &str, xml: &str) -> io::Result<(u16, String)> {
        let path = format!("/documents?name={}", client::encode_component(name));
        self.request("POST", &path, xml.as_bytes())
    }

    /// Remove a document through the coordinator.
    pub fn remove(&self, name: &str) -> io::Result<(u16, String)> {
        let path = format!("/documents/{}", client::encode_component(name));
        self.request("DELETE", &path, &[])
    }

    /// Block until every follower has applied its primary's last LSN
    /// (or `timeout` elapses). Returns whether the cluster converged.
    /// Replication is pull-based and asynchronous; tests that assert on
    /// replica state call this between the write and the read.
    pub fn wait_replicated(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let caught_up = self.shards.iter().all(|shard| {
                let target = shard.primary.applied_lsn();
                shard.replicas.iter().all(|r| r.applied_lsn() >= target)
            });
            if caught_up {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Shut everything down: coordinator first (no new fan-out), then
    /// followers (stop pulling), then primaries.
    pub fn shutdown(self) {
        let LocalCluster {
            shards,
            coordinator,
            ..
        } = self;
        coordinator.shutdown();
        for shard in shards {
            for replica in shard.replicas {
                replica.shutdown();
            }
            shard.primary.shutdown();
        }
    }
}

/// A fresh scratch directory under the system temp dir, unique per
/// (process, call). Callers own cleanup.
pub fn scratch_dir(label: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SCRATCH_COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = SCRATCH_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("tix-cluster-{label}-{}-{n}", std::process::id()))
}
