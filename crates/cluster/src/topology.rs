//! The cluster map: which address is the primary for each shard, and
//! which addresses replicate it.
//!
//! Persisted as `cluster.json` in a cluster directory (written by
//! `tix cluster init`, read by `tix cluster serve|status` and the
//! coordinator). The file is written with the store's crash-safe
//! [`atomic_write`](tix::store::persist::atomic_write), so a torn write
//! can never leave a half-readable map.

use std::fmt;
use std::io;
use std::path::Path;

use crate::json::Json;

/// File name of the persisted topology inside a cluster directory.
pub const TOPOLOGY_FILE: &str = "cluster.json";

/// One shard's serving group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTopology {
    /// Address (`host:port`) of the shard primary (accepts writes,
    /// serves the WAL feed).
    pub primary: String,
    /// Addresses of follower replicas (read-only, pull the WAL).
    pub replicas: Vec<String>,
}

/// The whole cluster map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// One entry per shard; shard id is the index.
    pub shards: Vec<ShardTopology>,
}

/// Why a topology could not be loaded or was rejected.
#[derive(Debug)]
pub enum TopologyError {
    /// Reading or writing the file failed.
    Io(io::Error),
    /// The file was not the expected JSON shape.
    Malformed(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Io(e) => write!(f, "topology i/o error: {e}"),
            TopologyError::Malformed(m) => write!(f, "malformed topology: {m}"),
        }
    }
}

impl std::error::Error for TopologyError {}

impl From<io::Error> for TopologyError {
    fn from(e: io::Error) -> Self {
        TopologyError::Io(e)
    }
}

impl Topology {
    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning document `name` (see [`crate::router::shard_of`]).
    pub fn shard_of(&self, name: &str) -> usize {
        crate::router::shard_of(name, self.shards.len())
    }

    /// Every node address in the map: each shard's primary, then its
    /// replicas, in shard order.
    pub fn all_nodes(&self) -> Vec<(usize, &str, bool)> {
        let mut out = Vec::new();
        for (shard, group) in self.shards.iter().enumerate() {
            out.push((shard, group.primary.as_str(), true));
            for replica in &group.replicas {
                out.push((shard, replica.as_str(), false));
            }
        }
        out
    }

    /// Render as the `cluster.json` document.
    pub fn to_json(&self) -> String {
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|s| {
                let replicas: Vec<String> = s
                    .replicas
                    .iter()
                    .map(|r| tix_server::render::json_string(r))
                    .collect();
                format!(
                    "{{\"primary\":{},\"replicas\":[{}]}}",
                    tix_server::render::json_string(&s.primary),
                    replicas.join(",")
                )
            })
            .collect();
        format!("{{\"shards\":[{}]}}", shards.join(","))
    }

    /// Parse a `cluster.json` document.
    pub fn from_json(text: &str) -> Result<Topology, TopologyError> {
        let doc = Json::parse(text).map_err(|e| TopologyError::Malformed(e.to_string()))?;
        let shards_json = doc
            .get("shards")
            .ok_or_else(|| TopologyError::Malformed("missing \"shards\" field".to_string()))?;
        let mut shards = Vec::new();
        for (i, shard) in shards_json.items().iter().enumerate() {
            let primary = shard
                .get("primary")
                .and_then(Json::str)
                .ok_or_else(|| {
                    TopologyError::Malformed(format!("shard {i}: missing \"primary\" string"))
                })?
                .to_string();
            let mut replicas = Vec::new();
            if let Some(list) = shard.get("replicas") {
                for (j, replica) in list.items().iter().enumerate() {
                    let addr = replica.str().ok_or_else(|| {
                        TopologyError::Malformed(format!("shard {i} replica {j}: not a string"))
                    })?;
                    replicas.push(addr.to_string());
                }
            }
            shards.push(ShardTopology { primary, replicas });
        }
        if shards.is_empty() {
            return Err(TopologyError::Malformed(
                "topology has no shards".to_string(),
            ));
        }
        Ok(Topology { shards })
    }

    /// Load `cluster.json` from a cluster directory.
    pub fn load(dir: impl AsRef<Path>) -> Result<Topology, TopologyError> {
        let text = std::fs::read_to_string(dir.as_ref().join(TOPOLOGY_FILE))?;
        Topology::from_json(&text)
    }

    /// Persist as `cluster.json` in `dir`, atomically and durably.
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<(), TopologyError> {
        use std::io::Write;
        let rendered = self.to_json();
        tix::store::persist::atomic_write::<TopologyError, _>(
            dir.as_ref().join(TOPOLOGY_FILE),
            |w| {
                w.write_all(rendered.as_bytes())?;
                w.write_all(b"\n")?;
                Ok(())
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Topology {
        Topology {
            shards: vec![
                ShardTopology {
                    primary: "127.0.0.1:7001".to_string(),
                    replicas: vec!["127.0.0.1:7101".to_string(), "127.0.0.1:7201".to_string()],
                },
                ShardTopology {
                    primary: "127.0.0.1:7002".to_string(),
                    replicas: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip() {
        let t = sample();
        let parsed = Topology::from_json(&t.to_json()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("tix-topology-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let t = sample();
        t.save(&dir).unwrap();
        assert_eq!(Topology::load(&dir).unwrap(), t);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_topologies_are_rejected() {
        assert!(Topology::from_json("{}").is_err());
        assert!(Topology::from_json("{\"shards\":[]}").is_err());
        assert!(Topology::from_json("{\"shards\":[{\"replicas\":[]}]}").is_err());
        assert!(Topology::from_json("{\"shards\":[{\"primary\":7}]}").is_err());
        assert!(Topology::from_json("not json").is_err());
    }

    #[test]
    fn all_nodes_lists_primaries_first_per_shard() {
        let t = sample();
        let nodes = t.all_nodes();
        assert_eq!(nodes.len(), 4);
        assert_eq!(nodes[0], (0, "127.0.0.1:7001", true));
        assert_eq!(nodes[1], (0, "127.0.0.1:7101", false));
        assert_eq!(nodes[3], (1, "127.0.0.1:7002", true));
    }
}
