//! Parallel primitives for document-partitioned execution.
//!
//! TIX's access methods (TermJoin, PhraseFinder, Pick) and the inverted
//! index builder are all single passes over document-ordered data with no
//! state crossing a document boundary, so they parallelise by partitioning
//! the document axis: evaluate chunks of documents independently and
//! concatenate the per-chunk outputs in document order. The result is
//! *identical* — bit for bit — to the sequential run, because each
//! document's computation is unchanged; only the schedule differs.
//!
//! This module supplies the two building blocks for that pattern:
//!
//! * [`default_threads`] — the worker count, from `TIX_THREADS` or the
//!   machine's available parallelism;
//! * [`parallel_map`] — map a function over a slice on scoped threads,
//!   returning results in input order.
//!
//! There is no thread pool: workers are `std::thread::scope` threads that
//! live for one call. For the index- and query-sized work units this crate
//! is used for, spawn cost is noise; in exchange there is no global state,
//! no shutdown ordering, and no unsafe code.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The worker count to use when the caller does not choose one: the
/// `TIX_THREADS` environment variable if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`], otherwise 1.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("TIX_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` using up to `threads` workers, returning results
/// in input order.
///
/// With `threads <= 1` (or fewer than two items) this runs sequentially on
/// the calling thread — the degenerate case costs nothing and spawns
/// nothing. Workers claim items from a shared counter, so uneven item
/// costs still balance. If `f` panics on any worker the panic is
/// propagated to the caller.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = threads.min(items.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                let Some(slot) = slots.get(i) else { break };
                // A poisoned slot only means another worker panicked while
                // storing; that panic is resumed after join, so recovering
                // the lock here is sound.
                *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(result);
            }));
        }
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                // A worker that failed to fill its slot panicked, and that
                // panic was resumed above, so every slot holds a result here.
                // lint:allow(no-unwrap): see above
                .expect("every item was processed")
        })
        .collect()
}

/// Split `0..len` into at most `parts` contiguous ranges of near-equal
/// size, in order. Returns an empty vector for `len == 0`.
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    tix_invariants::check! {
        tix_invariants::assert_partition(len, &ranges);
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 3, 8, 200] {
            let out = parallel_map(&items, threads, |&x| x * x);
            assert_eq!(
                out,
                items.iter().map(|&x| x * x).collect::<Vec<_>>(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn map_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            parallel_map(&[1u32, 2, 3], 2, |&x| {
                if x == 2 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 2, 7, 16, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(len, parts);
                if len == 0 {
                    assert!(ranges.is_empty());
                    continue;
                }
                assert!(ranges.len() <= parts.max(1));
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, len);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                    assert!(!w[1].is_empty());
                }
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(hi - lo <= 1, "balanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
