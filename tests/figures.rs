//! Golden reproduction of the paper's worked figures.
//!
//! The Figure 1 example database ships in `tix_corpus::fig1` with text
//! engineered so the paper's term counts hold exactly. These tests assert,
//! number for number, the results the paper shows in:
//!
//! * **Fig. 5** — Query 2 under scored selection (scores 0.8 / 3.6 / 5.6);
//! * **Fig. 6** — Query 2 under scored projection (the 12-node tree);
//! * **Fig. 7** — Query 3's scored join (root score 2.8);
//! * **Fig. 8** — projection followed by Pick (article[5.0] with
//!   chapter[5.0], section-title[0.8], p[0.8], p[1.4], p[1.4]);
//! * **Example 3.1** — the 4-step plan whose top Threshold result is the
//!   `<chapter>` node (#a10).

use std::sync::Arc;

use tix::core::ops;
use tix::core::pattern::{
    Agg, EdgeKind, PatternNodeId, PatternTree, Predicate, ScoreInput, ScoreRule,
};
use tix::core::scoring::paper::{score_bar_combiner, ScoreFoo, ScoreSim};
use tix::core::scoring::ScoreContext;
use tix::core::{Collection, ScoredTree};
use tix::corpus::fig1;
use tix::store::{NodeIdx, NodeRef, Store};

/// Node indexes in `fig1::ARTICLES_XML` (whitespace text is not stored):
/// 0 article · 1 article-title · 3 author · 6 sname · 8/13/18 chapters ·
/// 21/26/31 sections · 22/27/32 section-titles · 34/36/38 the Examples
/// paragraphs (the paper's #a18/#a19/#a20).
mod n {
    pub const ARTICLE: u32 = 0;
    pub const ARTICLE_TITLE: u32 = 1;
    pub const SNAME: u32 = 6;
    pub const CHAPTER3: u32 = 18; // the paper's #a10
    pub const SECTION1: u32 = 21; // #a12
    pub const ST1: u32 = 22; // #a13
    pub const SECTION2: u32 = 26; // #a14
    pub const ST2: u32 = 27; // #a15
    pub const SECTION3: u32 = 31; // #a16
    pub const P18: u32 = 34; // #a18
    pub const P19: u32 = 36; // #a19
    pub const P20: u32 = 38; // #a20
}

fn aref(store: &Store, idx: u32) -> NodeRef {
    NodeRef::new(store.doc_by_name("articles.xml").unwrap(), NodeIdx(idx))
}

/// The Query 2 pattern of the paper's Figure 3.
struct Query2 {
    pattern: PatternTree,
    n1: PatternNodeId,
    n3: PatternNodeId,
    n4: PatternNodeId,
}

fn query2_pattern() -> Query2 {
    let mut pattern = PatternTree::new();
    let n1 = pattern.add_root(Predicate::tag("article"));
    let n2 = pattern.add_child(n1, EdgeKind::Child, Predicate::tag("author"));
    let n3 = pattern.add_child(
        n2,
        EdgeKind::Child,
        Predicate::And(vec![Predicate::tag("sname"), Predicate::content_eq("Doe")]),
    );
    let n4 = pattern.add_child(n1, EdgeKind::SelfOrDescendant, Predicate::True);
    pattern.score_primary(
        n4,
        ScoreFoo::shared(&["search engine"], &["internet", "information retrieval"]),
    );
    pattern.score_from_descendant(n1, n4);
    Query2 {
        pattern,
        n1,
        n3,
        n4,
    }
}

fn score_of(tree: &ScoredTree, store: &Store, idx: u32) -> Option<f64> {
    tree.entries()
        .iter()
        .find(|e| e.source.stored() == Some(aref(store, idx)))
        .and_then(|e| e.score)
}

#[test]
fn figure5_selection_witnesses() {
    let (store, _, _) = fig1::load().unwrap();
    let q = query2_pattern();
    let input = Collection::document(&store, "articles.xml").unwrap();
    let result = ops::select(&store, &input, &q.pattern);
    // $4 ranges over all 24 elements of articles.xml.
    assert_eq!(result.len(), 24);

    // Fig. 5(a): the witness where $4 bound #a18 — article[0.8] with the
    // paragraph scored 0.8.
    let a = result
        .iter()
        .find(|t| {
            t.bound(q.n4)
                .any(|(_, e)| e.source.stored() == Some(aref(&store, n::P18)))
        })
        .expect("witness for #a18");
    assert!((a.score().unwrap() - 0.8).abs() < 1e-9);
    assert!((score_of(a, &store, n::P18).unwrap() - 0.8).abs() < 1e-9);

    // Fig. 5(b): $4 = section #a16, scored 3.6.
    let b = result
        .iter()
        .find(|t| {
            t.bound(q.n4)
                .any(|(_, e)| e.source.stored() == Some(aref(&store, n::SECTION3)))
        })
        .expect("witness for #a16");
    assert!((b.score().unwrap() - 3.6).abs() < 1e-9, "{:?}", b.score());

    // Fig. 5(c): $4 = the article itself — one merged root entry bound to
    // both $1 and $4, scored 5.6.
    let c = result
        .iter()
        .find(|t| t.entries()[0].vars.len() == 2)
        .expect("self-match witness");
    assert!((c.score().unwrap() - 5.6).abs() < 1e-9, "{:?}", c.score());
    assert_eq!(c.len(), 3); // article, author, sname
}

#[test]
fn figure6_projection_tree() {
    let (store, _, _) = fig1::load().unwrap();
    let q = query2_pattern();
    let input = Collection::document(&store, "articles.xml").unwrap();
    let result = ops::project(&store, &input, &q.pattern, &[q.n1, q.n3, q.n4]);
    assert_eq!(result.len(), 1);
    let tree = &result.trees()[0];

    // Exactly the nodes of Fig. 6, in document order, with its scores.
    let expected: &[(u32, Option<f64>)] = &[
        (n::ARTICLE, Some(5.6)),
        (n::ARTICLE_TITLE, Some(0.6)),
        (n::SNAME, None),
        (n::CHAPTER3, Some(5.0)),
        (n::SECTION1, Some(0.8)),
        (n::ST1, Some(0.8)),
        (n::SECTION2, Some(0.6)),
        (n::ST2, Some(0.6)),
        (n::SECTION3, Some(3.6)),
        (n::P18, Some(0.8)),
        (n::P19, Some(1.4)),
        (n::P20, Some(1.4)),
    ];
    let got: Vec<(u32, Option<f64>)> = tree
        .entries()
        .iter()
        .map(|e| (e.source.stored().unwrap().node.as_u32(), e.score))
        .collect();
    let expected_rounded: Vec<(u32, Option<f64>)> = expected.to_vec();
    let got_rounded: Vec<(u32, Option<f64>)> = got
        .iter()
        .map(|&(n, s)| (n, s.map(|v| (v * 10.0).round() / 10.0)))
        .collect();
    assert_eq!(
        got_rounded,
        expected_rounded,
        "\noutline:\n{}",
        tree.outline(&store)
    );
}

#[test]
fn figure8_pick_result() {
    let (store, _, _) = fig1::load().unwrap();
    let q = query2_pattern();
    let input = Collection::document(&store, "articles.xml").unwrap();
    let projected = ops::project(&store, &input, &q.pattern, &[q.n1, q.n3, q.n4]);
    let ctx = ScoreContext::new(&store);
    let picked = ops::pick(
        &ctx,
        &projected,
        q.n4,
        &ops::FractionPick::paper(),
        q.pattern.rules(),
    );
    assert_eq!(picked.len(), 1);
    let tree = &picked.trees()[0];
    // Fig. 8: article[5.0] (root, score recomputed after pruning), sname,
    // chapter[5.0], section-title[0.8] re-linked under chapter, and the
    // three paragraphs.
    let expected: &[(u32, Option<f64>)] = &[
        (n::ARTICLE, Some(5.0)),
        (n::SNAME, None),
        (n::CHAPTER3, Some(5.0)),
        (n::ST1, Some(0.8)),
        (n::P18, Some(0.8)),
        (n::P19, Some(1.4)),
        (n::P20, Some(1.4)),
    ];
    let got: Vec<(u32, Option<f64>)> = tree
        .entries()
        .iter()
        .map(|e| {
            (
                e.source.stored().unwrap().node.as_u32(),
                e.score.map(|v| (v * 10.0).round() / 10.0),
            )
        })
        .collect();
    assert_eq!(got, expected, "\noutline:\n{}", tree.outline(&store));

    // The paper's structural detail: section-title #a13 now hangs directly
    // off chapter #a10 (its own section was pruned).
    let chapter_pos = tree
        .entries()
        .iter()
        .position(|e| e.source.stored() == Some(aref(&store, n::CHAPTER3)))
        .unwrap() as u32;
    let st = tree
        .entries()
        .iter()
        .find(|e| e.source.stored() == Some(aref(&store, n::ST1)))
        .unwrap();
    assert_eq!(st.parent, Some(chapter_pos));
}

#[test]
fn figure7_join_result() {
    let (store, _, _) = fig1::load().unwrap();

    // Fig. 4's pattern, split into its two sides: $2..$6 articles,
    // $7..$8 reviews.
    let mut left = PatternTree::with_first_id(2);
    let n2 = left.add_root(Predicate::tag("article"));
    let n3 = left.add_child(n2, EdgeKind::Child, Predicate::tag("article-title"));
    let n4 = left.add_child(n2, EdgeKind::Child, Predicate::tag("author"));
    let _n5 = left.add_child(
        n4,
        EdgeKind::Child,
        Predicate::And(vec![Predicate::tag("sname"), Predicate::content_eq("Doe")]),
    );
    let n6 = left.add_child(n2, EdgeKind::SelfOrDescendant, Predicate::True);
    left.score_primary(
        n6,
        ScoreFoo::shared(&["search engine"], &["internet", "information retrieval"]),
    );
    left.score_from_descendant(n2, n6);

    let mut right = PatternTree::with_first_id(7);
    let n7 = right.add_root(Predicate::tag("review"));
    let n8 = right.add_child(n7, EdgeKind::Child, Predicate::tag("title"));

    let left_coll = ops::select(
        &store,
        &Collection::document(&store, "articles.xml").unwrap(),
        &left,
    );
    let right_coll = ops::select(
        &store,
        &Collection::document(&store, "reviews.xml").unwrap(),
        &right,
    );

    let root_var = PatternNodeId(1); // Fig. 4's $1 = tix_prod_root
    let join_score = PatternNodeId(99); // $joinScore
    let conditions = [ops::JoinCondition {
        left: n3,
        right: n8,
        scorer: Arc::new(ScoreSim),
        output: join_score,
        min_score: None,
    }];
    let rules = [ScoreRule::Combined {
        node: root_var,
        inputs: vec![ScoreInput::Aux(join_score), ScoreInput::Var(n6, Agg::Max)],
        combine: score_bar_combiner(),
    }];
    let ctx = ScoreContext::new(&store);
    let joined = ops::join(&ctx, &left_coll, &right_coll, &conditions, root_var, &rules);

    // 24 article witnesses × 2 reviews.
    assert_eq!(joined.len(), 48);

    // Fig. 7's tree: the witness where $6 = #a18 (0.8) paired with review 1
    // ("Internet Technologies", simScore 2) → tix_prod_root[2.8].
    let fig7 = joined
        .iter()
        .filter(|t| {
            t.aux(join_score) == Some(2.0)
                && t.entries()
                    .iter()
                    .any(|e| e.source.stored() == Some(aref(&store, n::P18)))
        })
        .collect::<Vec<_>>();
    assert_eq!(fig7.len(), 1);
    assert_eq!(fig7[0].score(), Some(2.8));

    // Review 2 ("WWW Technologies") shares one word with the article title.
    let with_r2: Vec<_> = joined
        .iter()
        .filter(|t| t.aux(join_score) == Some(1.0))
        .collect();
    assert_eq!(with_r2.len(), 24);
}

/// Example 3.1: projection → Pick → per-IR-node selection → Threshold
/// top-1; the winner contains the chapter #a10.
#[test]
fn example_3_1_workflow() {
    let (store, _, _) = fig1::load().unwrap();
    let q = query2_pattern();
    let ctx = ScoreContext::new(&store);
    let input = Collection::document(&store, "articles.xml").unwrap();

    // Step 1: projection (Fig. 6).
    let projected = ops::project(&store, &input, &q.pattern, &[q.n1, q.n3, q.n4]);
    // Step 2: Pick (Fig. 8).
    let picked = ops::pick(
        &ctx,
        &projected,
        q.n4,
        &ops::FractionPick::paper(),
        q.pattern.rules(),
    );
    // Step 3: one tree per remaining primary data IR-node ("a collection of
    // five trees, corresponding to the five primary data IR-nodes").
    let tree = &picked.trees()[0];
    let per_node: Collection = tree
        .bound(q.n4)
        .map(|(_, e)| {
            ScoredTree::from_stored(
                &store,
                vec![(e.source.stored().unwrap(), e.score, vec![q.n4])],
            )
        })
        .collect();
    assert_eq!(per_node.len(), 5);
    // Step 4: Threshold keeps the top-1 ranked result.
    let top = ops::threshold(&per_node, &[ops::ThresholdCond::TopK { var: q.n4, k: 1 }]);
    assert_eq!(top.len(), 1);
    let winner = top.trees()[0].entries()[0].source.stored().unwrap();
    assert_eq!(winner, aref(&store, n::CHAPTER3), "the paper's #a10");
}
