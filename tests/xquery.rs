//! The paper's Figure 10 queries, expressed in the extended-XQuery dialect
//! and run against the Figure 1 database.

use tix::corpus::fig1;
use tix::query::run_query;

#[test]
fn query1_simple_ir_style() {
    let (store, _, _) = fig1::load().unwrap();
    let items = run_query(
        &store,
        r#"
        For $a in document("articles.xml")//article/descendant-or-self::*
        Score $a using ScoreFoo($a, {"search engine"},
                                {"internet", "information retrieval"})
        Pick $a using PickFoo($a)
        Return $a
        Sortby(score)
        Threshold $a/@score > 4 stop after 5
        "#,
    )
    .unwrap();
    // After Pick + Threshold(>4), only the chapter (5.0) survives.
    assert_eq!(items.len(), 1);
    assert_eq!(items[0].tag.as_deref(), Some("chapter"));
    assert!((items[0].score.unwrap() - 5.0).abs() < 1e-9);
    assert!(items[0]
        .xml
        .contains("<section-title>Search Engine Basics</section-title>"));
}

#[test]
fn query2_structured_ir_style() {
    let (store, _, _) = fig1::load().unwrap();
    let query = r#"
        For $a := document("articles.xml")//article[/author/sname/text()="Doe"]/descendant-or-self::*
        Score $a using ScoreFoo($a, {"search engine"},
                                {"internet", "information retrieval"})
        Pick $a using PickFoo($a)
        Return $a
        Sortby(score)
        Threshold $a/@score > 4 stop after 5
    "#;
    let items = run_query(&store, query).unwrap();
    assert_eq!(items.len(), 1);
    assert_eq!(items[0].tag.as_deref(), Some("chapter"));

    // The structural predicate really gates the result: a different
    // surname yields nothing.
    let none = run_query(&store, &query.replace("Doe", "Nobody")).unwrap();
    assert!(none.is_empty());
}

#[test]
fn query2_without_pick_ranks_article_first() {
    let (store, _, _) = fig1::load().unwrap();
    let items = run_query(
        &store,
        r#"
        For $a in document("articles.xml")//article[/author/sname/text()="Doe"]/descendant-or-self::*
        Score $a using ScoreFoo($a, {"search engine"},
                                {"internet", "information retrieval"})
        Return $a
        Sortby(score)
        "#,
    )
    .unwrap();
    // Without redundancy elimination the article (5.6) dominates, followed
    // by the chapter (5.0) — the motivation for Pick in Sec. 2.
    assert!(items.len() >= 2);
    assert_eq!(items[0].tag.as_deref(), Some("article"));
    assert!((items[0].score.unwrap() - 5.6).abs() < 1e-9);
    assert_eq!(items[1].tag.as_deref(), Some("chapter"));
    assert!((items[1].score.unwrap() - 5.0).abs() < 1e-9);
}

#[test]
fn query3_ir_style_join() {
    let (store, _, _) = fig1::load().unwrap();
    let items = run_query(
        &store,
        r#"
        For $a in document("articles.xml")//article[/author/sname/text()="Doe"]
        For $b in document("reviews.xml")//review
        Score $a using ScoreFoo($a, {"search engine"},
                                {"internet", "information retrieval"})
        Score $j using ScoreSim($a/article-title, $b/title)
        Score $r using ScoreBar($j, $a)
        Threshold $j/@score > 1
        Sortby(score)
        "#,
    )
    .unwrap();
    // Only review 1 ("Internet Technologies") passes simScore > 1.
    assert_eq!(items.len(), 1);
    let item = &items[0];
    assert_eq!(item.tag.as_deref(), Some("tix_prod_root"));
    // simScore 2 + article score 5.6 = 7.6.
    assert!((item.score.unwrap() - 7.6).abs() < 1e-9, "{:?}", item.score);
    assert!(item.xml.contains("<rating>5</rating>"));
}
