//! End-to-end pipeline tests over the synthetic corpus: generator → store →
//! index → access methods → Pick/Threshold, cross-checking layers against
//! each other at integration level.

use tix::corpus::{workloads, CorpusSpec, Generator, PlantSpec};
use tix::exec::pick::{pick_stream, PickParams};
use tix::exec::scored::sort_by_node;
use tix::exec::termjoin::{ChildCountMode, ComplexScorer, SimpleScorer, TermJoin};
use tix::exec::{phrase, topk};
use tix::Database;

fn build_db(plants: PlantSpec) -> Database {
    let generator = Generator::new(CorpusSpec::small(), plants).unwrap();
    let mut db = Database::new();
    generator.load_into(db.store_mut()).unwrap();
    db.build_index();
    db
}

#[test]
fn termjoin_scores_reflect_planted_frequencies() {
    let db = build_db(
        PlantSpec::default()
            .with_term("alpha", 120)
            .with_term("beta", 40),
    );
    let scorer = SimpleScorer::uniform();
    let scored = TermJoin::new(db.store(), db.index(), &["alpha", "beta"], &scorer).run();
    // Every article root's score sums to the occurrences it contains;
    // the global sum over document roots equals the planted totals.
    let root_sum: f64 = scored
        .iter()
        .filter(|s| s.node.node.as_u32() == 0)
        .map(|s| s.score)
        .sum();
    assert!((root_sum - 160.0).abs() < 1e-9, "got {root_sum}");
}

#[test]
fn search_pipeline_returns_granular_units() {
    let db = build_db(PlantSpec::default().with_term("needle", 60));
    let results = db.search(
        &["needle"],
        PickParams {
            relevance_threshold: 1.0,
            fraction: 0.5,
        },
        10,
    );
    assert!(!results.is_empty());
    assert!(results.len() <= 10);
    // Parent/child exclusivity holds across the returned set.
    for a in &results {
        for b in &results {
            assert!(
                a.node == b.node || db.store().parent(b.node) != Some(a.node),
                "{} is the parent of {}",
                a.node,
                b.node
            );
        }
    }
}

#[test]
fn phrase_pipeline_matches_planted_adjacencies() {
    let db = build_db(
        PlantSpec::default()
            .with_phrase("lorem", "ipsum", 18, 30)
            .with_term("lorem", 50)
            .with_term("ipsum", 20),
    );
    let matches = db.find_phrase(&["lorem", "ipsum"]);
    let total: f64 = matches.iter().map(|s| s.score).sum();
    // All 18 planted adjacencies are found (chance adjacencies from the
    // standalone plantings can only add).
    assert!(total >= 18.0, "got {total}");
    // And Comp3 sees exactly the same matches.
    let c3 = sort_by_node(phrase::comp3(db.store(), db.index(), &["lorem", "ipsum"]));
    assert_eq!(matches, c3);
}

#[test]
fn complex_scoring_pipeline_enhanced_equals_plain() {
    let db = build_db(
        PlantSpec::default()
            .with_term("alpha", 80)
            .with_term("beta", 25),
    );
    let plain = ComplexScorer::uniform(ChildCountMode::Navigate);
    let enhanced = ComplexScorer::uniform(ChildCountMode::Index);
    let a = sort_by_node(TermJoin::new(db.store(), db.index(), &["alpha", "beta"], &plain).run());
    let b =
        sort_by_node(TermJoin::new(db.store(), db.index(), &["alpha", "beta"], &enhanced).run());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.node, y.node);
        assert!((x.score - y.score).abs() < 1e-9);
    }
}

#[test]
fn topk_over_pick_is_stable() {
    let db = build_db(PlantSpec::default().with_term("gamma", 100));
    let scorer = SimpleScorer::uniform();
    let scored = sort_by_node(TermJoin::new(db.store(), db.index(), &["gamma"], &scorer).run());
    let picked = pick_stream(
        db.store(),
        &scored,
        &PickParams {
            relevance_threshold: 2.0,
            fraction: 0.5,
        },
    );
    let top = topk::top_k(picked.clone(), 5);
    assert!(top.len() <= 5);
    assert!(top.windows(2).all(|w| w[0].score >= w[1].score));
    // Top-k is a subset of the picked set.
    for t in &top {
        assert!(picked.iter().any(|p| p.node == t.node));
    }
}

#[test]
fn paper_workload_plants_resolve_in_index() {
    // Scaled-down version of the real experiment setup.
    let plants = workloads::paper_plants(0.05);
    let generator = Generator::new(CorpusSpec::small(), plants).unwrap();
    let mut db = Database::new();
    generator.load_into(db.store_mut()).unwrap();
    db.build_index();
    for &freq in workloads::TABLE12_FREQUENCIES {
        let expect = ((freq as f64 * 0.05).round() as usize).max(1);
        for which in 0..2 {
            let term = workloads::pair_term(freq, which);
            assert_eq!(
                db.index().collection_frequency(&term),
                expect,
                "term {term}"
            );
        }
    }
    // Table 5 phrase rows resolve too.
    let (a, b) = workloads::table5_terms(0);
    assert!(db.index().collection_frequency(&a) > 0);
    assert!(db.index().collection_frequency(&b) > 0);
    assert!(!db.find_phrase(&[&a, &b]).is_empty());
}

#[test]
fn snapshot_roundtrip_preserves_query_results() {
    let db = build_db(PlantSpec::default().with_term("persist", 30));
    let mut buf = Vec::new();
    db.store().save_snapshot(&mut buf).unwrap();
    let reloaded = tix::store::Store::load_snapshot(buf.as_slice()).unwrap();
    assert_eq!(db.store().stats(), reloaded.stats());
    // The full stack works on the reloaded store with identical results.
    let index = tix::index::InvertedIndex::build(&reloaded);
    assert_eq!(index.collection_frequency("persist"), 30);
    let scorer = SimpleScorer::uniform();
    let before = sort_by_node(TermJoin::new(db.store(), db.index(), &["persist"], &scorer).run());
    let after = sort_by_node(TermJoin::new(&reloaded, &index, &["persist"], &scorer).run());
    assert_eq!(before, after);
}
