//! Structured IR-style search with the extended-XQuery dialect: the
//! paper's Queries 1 and 2 (Fig. 10) against the Figure 1 database, and
//! the same shape against a generated corpus.
//!
//! Run with: `cargo run --example structured_ir_search`

use tix::corpus::{fig1, CorpusSpec, Generator, PlantSpec};
use tix::query::run_query;
use tix::store::Store;

fn show(title: &str, items: &[tix::query::ResultItem]) {
    println!("\n=== {title} ===");
    if items.is_empty() {
        println!("(no results)");
    }
    for (i, item) in items.iter().enumerate() {
        let tag = item.tag.as_deref().unwrap_or("?");
        let score = item
            .score
            .map(|s| format!("{s:.2}"))
            .unwrap_or_else(|| "-".into());
        let preview: String = item.xml.chars().take(96).collect();
        println!("{:>2}. <{tag}> score={score}  {preview}…", i + 1);
    }
}

fn main() {
    // Part 1: the paper's own examples.
    let (store, _, _) = fig1::load().expect("figure 1 database loads");

    let query1 = r#"
        For $a in document("articles.xml")//article/descendant-or-self::*
        Score $a using ScoreFoo($a, {"search engine"},
                                {"internet", "information retrieval"})
        Pick $a using PickFoo($a)
        Return $a
        Sortby(score)
        Threshold $a/@score > 0.5 stop after 5
    "#;
    show(
        "Query 1: simple IR-style",
        &run_query(&store, query1).unwrap(),
    );

    let query2 = r#"
        For $a := document("articles.xml")//article[/author/sname/text()="Doe"]/descendant-or-self::*
        Score $a using ScoreFoo($a, {"search engine"},
                                {"internet", "information retrieval"})
        Pick $a using PickFoo($a)
        Return $a
        Sortby(score)
        Threshold $a/@score > 4 stop after 5
    "#;
    show(
        "Query 2: structured IR-style",
        &run_query(&store, query2).unwrap(),
    );

    // Part 2: the same query shape against a synthetic 200-article corpus
    // with a planted topic.
    let plants = PlantSpec::default()
        .with_phrase("vector", "search", 25, 40)
        .with_term("vector", 100)
        .with_term("ranking", 60);
    let generator = Generator::new(CorpusSpec::small(), plants).unwrap();
    let mut corpus_store = Store::new();
    generator.load_into(&mut corpus_store).unwrap();
    println!("\ncorpus: {}", corpus_store.stats());

    // Find an article that actually mentions the planted topic, then ask
    // for its most relevant components.
    let index = tix::index::InvertedIndex::build(&corpus_store);
    let doc = index.postings("vector")[0].doc;
    let doc_name = corpus_store.doc(doc).name().to_string();
    let corpus_query = format!(
        r#"
        For $a in document("{doc_name}")//article/descendant-or-self::*
        Score $a using ScoreFoo($a, {{"vector"}}, {{"ranking"}})
        Pick $a using PickFoo($a, 0.7, 0.5)
        Return $a
        Sortby(score)
        Threshold $a/@score > 0.5 stop after 3
    "#
    );
    show(
        &format!("components of {doc_name} about 'vector'"),
        &run_query(&corpus_store, &corpus_query).unwrap(),
    );
}
