//! Corpus explorer: generate an INEX-like corpus, index it, and compare
//! every Sec. 5/6 access method on a live query — a miniature of the
//! paper's experimental setup with timings printed per method.
//!
//! Run with: `cargo run --release --example corpus_explorer`

use std::time::Instant;

use tix::corpus::{CorpusSpec, Generator, PlantSpec};
use tix::exec::composite::{comp1, comp2};
use tix::exec::meet::generalized_meet;
use tix::exec::phrase::{comp3, phrase_finder};
use tix::exec::pick::{pick_stream, PickParams};
use tix::exec::scored::sort_by_node;
use tix::exec::termjoin::{ChildCountMode, ComplexScorer, SimpleScorer, TermJoin};
use tix::Database;

fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    println!(
        "  {label:<22} {:>10.3} ms",
        start.elapsed().as_secs_f64() * 1e3
    );
    out
}

fn main() {
    // A mid-size corpus with one planted topic and one planted phrase.
    let spec = CorpusSpec {
        articles: 400,
        ..CorpusSpec::default()
    };
    let plants = PlantSpec::default()
        .with_term("quantum", 800)
        .with_term("entangle", 300)
        .with_phrase("bell", "state", 60, 200)
        .with_term("bell", 500)
        .with_term("state", 400);
    println!(
        "generating {} articles (~{} nodes)…",
        spec.articles,
        spec.approx_nodes()
    );
    let generator = Generator::new(spec, plants).expect("valid plant spec");
    let mut db = Database::new();
    let start = Instant::now();
    generator.load_into(db.store_mut()).expect("corpus loads");
    println!(
        "loaded in {:.2} s: {}",
        start.elapsed().as_secs_f64(),
        db.store().stats()
    );
    let start = Instant::now();
    db.build_index();
    println!(
        "indexed in {:.2} s: {} terms, {} tokens",
        start.elapsed().as_secs_f64(),
        db.index().term_count(),
        db.index().total_tokens()
    );

    // TermJoin vs every baseline, simple scoring.
    let terms = ["quantum", "entangle"];
    println!(
        "\nscoring query {:?} (freqs {} / {}), simple scorer:",
        terms,
        db.index().collection_frequency(terms[0]),
        db.index().collection_frequency(terms[1]),
    );
    let simple = SimpleScorer::new(vec![0.8, 0.6]);
    let tj = timed("TermJoin", || {
        sort_by_node(TermJoin::new(db.store(), db.index(), &terms, &simple).run())
    });
    let c1 = timed("Comp1", || {
        sort_by_node(comp1(db.store(), db.index(), &terms, &simple))
    });
    let c2 = timed("Comp2", || {
        sort_by_node(comp2(db.store(), db.index(), &terms, &simple))
    });
    let gm = timed("Generalized Meet", || {
        sort_by_node(generalized_meet(db.store(), db.index(), &terms, &simple))
    });
    assert_eq!(tj.len(), c1.len());
    assert_eq!(tj.len(), c2.len());
    assert_eq!(tj.len(), gm.len());
    println!("  → {} scored elements, all methods agree", tj.len());

    // Complex scoring: plain vs Enhanced.
    println!("\ncomplex scorer (plain navigation vs child-count index):");
    let plain = ComplexScorer::uniform(ChildCountMode::Navigate);
    let enhanced = ComplexScorer::uniform(ChildCountMode::Index);
    timed("TermJoin (plain)", || {
        TermJoin::new(db.store(), db.index(), &terms, &plain).run()
    });
    timed("Enhanced TermJoin", || {
        TermJoin::new(db.store(), db.index(), &terms, &enhanced).run()
    });

    // PhraseFinder vs Comp3.
    println!("\nphrase \"bell state\":");
    let pf = timed("PhraseFinder", || {
        sort_by_node(phrase_finder(db.store(), db.index(), &["bell", "state"]))
    });
    let c3 = timed("Comp3", || {
        sort_by_node(comp3(db.store(), db.index(), &["bell", "state"]))
    });
    assert_eq!(pf, c3);
    println!("  → {} phrase-bearing text nodes", pf.len());

    // Pick over the scored stream.
    println!("\nPick over the TermJoin output ({} nodes):", tj.len());
    let picked = timed("stack-based Pick", || {
        pick_stream(
            db.store(),
            &tj,
            &PickParams {
                relevance_threshold: 1.0,
                fraction: 0.5,
            },
        )
    });
    println!("  → {} irredundant units of retrieval", picked.len());
    for s in picked.iter().take(5) {
        println!(
            "    {} <{}> score {:.1}",
            s.node,
            db.store().tag_name(s.node).unwrap_or("?"),
            s.score
        );
    }
}
