//! IR-style join (the paper's Query 3): find relevant article components
//! and join them with reviews whose titles are similar, combining the
//! similarity score with the relevance score via `ScoreBar`.
//!
//! Shows both routes: the extended-XQuery dialect and the algebra directly.
//!
//! Run with: `cargo run --example review_join`

use std::sync::Arc;

use tix::core::ops;
use tix::core::pattern::{
    Agg, EdgeKind, PatternNodeId, PatternTree, Predicate, ScoreInput, ScoreRule,
};
use tix::core::scoring::paper::{score_bar_combiner, ScoreFoo, ScoreSim};
use tix::core::scoring::ScoreContext;
use tix::core::Collection;
use tix::corpus::fig1;
use tix::query::run_query;

fn main() {
    let (store, _, _) = fig1::load().expect("figure 1 database loads");

    // Route A: the query language.
    println!("=== Query 3 via the extended-XQuery dialect ===");
    let items = run_query(
        &store,
        r#"
        For $a in document("articles.xml")//article[/author/sname/text()="Doe"]
        For $b in document("reviews.xml")//review
        Score $a using ScoreFoo($a, {"search engine"},
                                {"internet", "information retrieval"})
        Score $j using ScoreSim($a/article-title, $b/title)
        Score $r using ScoreBar($j, $a)
        Threshold $j/@score > 1
        Sortby(score)
        "#,
    )
    .expect("query evaluates");
    for item in &items {
        println!(
            "score {:.1}: {}",
            item.score.unwrap_or(0.0),
            clip(&item.xml, 120)
        );
    }

    // Route B: the algebra, reproducing Fig. 7's witness-level trees.
    println!("\n=== Query 3 via the algebra (Fig. 4 pattern) ===");
    let mut left = PatternTree::with_first_id(2);
    let n2 = left.add_root(Predicate::tag("article"));
    let n3 = left.add_child(n2, EdgeKind::Child, Predicate::tag("article-title"));
    let n6 = left.add_child(n2, EdgeKind::SelfOrDescendant, Predicate::True);
    left.score_primary(
        n6,
        ScoreFoo::shared(&["search engine"], &["internet", "information retrieval"]),
    );
    left.score_from_descendant(n2, n6);

    let mut right = PatternTree::with_first_id(7);
    let n7 = right.add_root(Predicate::tag("review"));
    let n8 = right.add_child(n7, EdgeKind::Child, Predicate::tag("title"));

    let articles = ops::select(
        &store,
        &Collection::document(&store, "articles.xml").unwrap(),
        &left,
    );
    let reviews = ops::select(
        &store,
        &Collection::document(&store, "reviews.xml").unwrap(),
        &right,
    );
    println!(
        "{} article witnesses × {} reviews",
        articles.len(),
        reviews.len()
    );

    let root_var = PatternNodeId(1);
    let join_score = PatternNodeId(99);
    let conditions = [ops::JoinCondition {
        left: n3,
        right: n8,
        scorer: Arc::new(ScoreSim),
        output: join_score,
        min_score: Some(1.0),
    }];
    let rules = [ScoreRule::Combined {
        node: root_var,
        inputs: vec![ScoreInput::Aux(join_score), ScoreInput::Var(n6, Agg::Max)],
        combine: score_bar_combiner(),
    }];
    let ctx = ScoreContext::new(&store);
    let mut joined = ops::join(&ctx, &articles, &reviews, &conditions, root_var, &rules);
    joined.sort_by_score_desc();

    println!("top join results (tix_prod_root trees):");
    for tree in joined.iter().take(3) {
        println!(
            "  root score {:.1}  (simScore {:.1})",
            tree.score().unwrap_or(0.0),
            tree.aux(join_score).unwrap_or(0.0),
        );
        print!("{}", indent(&tree.outline(&store)));
    }
}

fn clip(s: &str, n: usize) -> String {
    let mut out: String = s.chars().take(n).collect();
    if out.len() < s.len() {
        out.push('…');
    }
    out
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect()
}
