//! Quickstart: load the paper's Figure 1 database, score it with
//! `ScoreFoo`, and walk through selection → projection → Pick → Threshold
//! (the paper's Example 3.1).
//!
//! Run with: `cargo run --example quickstart`

use tix::core::ops;
use tix::core::pattern::{EdgeKind, PatternTree, Predicate};
use tix::core::scoring::paper::ScoreFoo;
use tix::core::scoring::ScoreContext;
use tix::core::Collection;
use tix::corpus::fig1;

fn main() {
    // 1. Load the example database (articles.xml + reviews.xml of Fig. 1).
    let (store, _articles, _reviews) = fig1::load().expect("example database loads");
    println!("loaded: {}", store.stats());

    // 2. Build the scored pattern tree for the paper's Query 2 (Fig. 3):
    //    articles by "Doe", and any component ($4, the ad* variable)
    //    scored on "search engine" / "internet" / "information retrieval".
    let mut pattern = PatternTree::new();
    let n1 = pattern.add_root(Predicate::tag("article"));
    let n2 = pattern.add_child(n1, EdgeKind::Child, Predicate::tag("author"));
    let n3 = pattern.add_child(
        n2,
        EdgeKind::Child,
        Predicate::And(vec![Predicate::tag("sname"), Predicate::content_eq("Doe")]),
    );
    let n4 = pattern.add_child(n1, EdgeKind::SelfOrDescendant, Predicate::True);
    pattern.score_primary(
        n4,
        ScoreFoo::shared(&["search engine"], &["internet", "information retrieval"]),
    );
    pattern.score_from_descendant(n1, n4); // $1.score = $4.score

    let input = Collection::document(&store, "articles.xml").expect("document is loaded");

    // 3. Scored projection (the paper's Fig. 6).
    let projected = ops::project(&store, &input, &pattern, &[n1, n3, n4]);
    println!("\n— projection (Fig. 6) —");
    for tree in projected.iter() {
        print!("{}", tree.outline(&store));
    }

    // 4. Pick: parent/child redundancy elimination (Fig. 8).
    let ctx = ScoreContext::new(&store);
    let picked = ops::pick(
        &ctx,
        &projected,
        n4,
        &ops::FractionPick::paper(),
        pattern.rules(),
    );
    println!("\n— after Pick (Fig. 8) —");
    for tree in picked.iter() {
        print!("{}", tree.outline(&store));
    }

    // 5. Rank what survived and show the best unit of retrieval.
    let mut survivors: Vec<(f64, String)> = picked
        .iter()
        .flat_map(|tree| {
            tree.bound(n4)
                .filter_map(|(_, e)| {
                    let node = e.source.stored()?;
                    Some((e.score?, store.subtree_xml(node)))
                })
                .collect::<Vec<_>>()
        })
        .collect();
    survivors.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let (score, xml) = &survivors[0];
    println!("\n— top result (score {score:.1}) —\n{xml}");
}
