//! Histogram-assisted thresholds (Sec. 5.3 of the paper): instead of
//! asking the user for an absolute relevance cutoff — "unrealistic …
//! since they have no idea of the distribution of the scores for a given
//! query" — build the auxiliary score histogram and derive the Pick
//! threshold from a quantile.
//!
//! Run with: `cargo run --release --example histogram_thresholds`

use tix::core::histogram::ScoreHistogram;
use tix::corpus::{CorpusSpec, Generator, PlantSpec};
use tix::exec::pick::{pick_stream, PickParams};
use tix::exec::scored::sort_by_node;
use tix::exec::termjoin::{SimpleScorer, TermJoin};
use tix::Database;

fn main() {
    // A corpus with one planted topic.
    let plants = PlantSpec::default()
        .with_term("fusion", 600)
        .with_term("plasma", 250);
    let generator = Generator::new(CorpusSpec::small(), plants).expect("valid plants");
    let mut db = Database::new();
    generator.load_into(db.store_mut()).expect("corpus loads");
    db.build_index();
    println!("corpus: {}", db.store().stats());

    // Score with TermJoin.
    let scorer = SimpleScorer::new(vec![1.0, 0.7]);
    let scored =
        sort_by_node(TermJoin::new(db.store(), db.index(), &["fusion", "plasma"], &scorer).run());
    println!("{} scored elements", scored.len());

    // The auxiliary data: a histogram of the score distribution.
    let histogram = ScoreHistogram::build(scored.iter().map(|s| s.score), 32);
    println!(
        "score distribution: min {:.2}, max {:.2}, median {:.2}, p90 {:.2}",
        histogram.min(),
        histogram.max(),
        histogram.quantile(0.5),
        histogram.quantile(0.9),
    );

    // Pick at three quantile-derived thresholds and show how the result
    // granularity shifts.
    for q in [0.5, 0.8, 0.95] {
        let params = PickParams::from_histogram(&histogram, q, 0.5);
        let picked = pick_stream(db.store(), &scored, &params);
        let tags: std::collections::BTreeMap<&str, usize> =
            picked.iter().fold(Default::default(), |mut acc, s| {
                *acc.entry(db.store().tag_name(s.node).unwrap_or("?"))
                    .or_default() += 1;
                acc
            });
        println!(
            "quantile {q:.2} → threshold {:.2} → {} picked {:?}",
            params.relevance_threshold,
            picked.len(),
            tags
        );
    }
}
